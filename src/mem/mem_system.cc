#include "mem/mem_system.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace wisync::mem {

namespace {

/** Align an address down to its 64-bit word. */
sim::Addr
wordOf(sim::Addr addr)
{
    return addr & ~sim::Addr{7};
}

} // namespace

MemSystem::MemSystem(sim::Engine &engine, noc::Mesh &mesh, Memory &memory,
                     std::uint32_t num_nodes, const MemConfig &cfg)
    : engine_(engine), mesh_(mesh), memory_(memory), numNodes_(num_nodes),
      cfg_(cfg), watches_(engine)
{
    l1_.reserve(numNodes_);
    banks_.reserve(numNodes_);
    const std::uint32_t sharer_words = (numNodes_ + 63) / 64;
    for (std::uint32_t n = 0; n < numNodes_; ++n) {
        l1_.emplace_back(cfg_.l1SizeBytes, cfg_.l1Assoc, cfg_.lineBytes);
        banks_.emplace_back(engine_, cfg_, sharer_words);
    }
    for (std::uint32_t c = 0; c < cfg_.numMemCtrls; ++c)
        dramCtrls_.push_back(
            std::make_unique<coro::Resource>(engine_, cfg_.dramOutstanding));
}

void
MemSystem::reset(const MemConfig &cfg)
{
    WISYNC_FATAL_IF(cfg.lineBytes != cfg_.lineBytes ||
                        cfg.l1SizeBytes != cfg_.l1SizeBytes ||
                        cfg.l1Assoc != cfg_.l1Assoc ||
                        cfg.l2BankSizeBytes != cfg_.l2BankSizeBytes ||
                        cfg.l2Assoc != cfg_.l2Assoc ||
                        cfg.numMemCtrls != cfg_.numMemCtrls ||
                        cfg.dramOutstanding != cfg_.dramOutstanding,
                    "MemSystem::reset cannot change the geometry");
    cfg_ = cfg;
    for (auto &l1 : l1_)
        l1.reset();
    for (auto &bank : banks_) {
        bank.tags.reset();
        bank.dir.reset(); // recycles entries instead of freeing them
    }
    for (auto &ctrl : dramCtrls_)
        ctrl->reset();
    watches_.reset(); // recycles events instead of freeing them
    stats_.reset();
}

DirEntry &
MemSystem::dirEntry(sim::Addr line)
{
    return banks_[homeOf(line)].dir[line];
}

DirTable::Stats
MemSystem::dirPoolStats() const
{
    DirTable::Stats total;
    for (const auto &bank : banks_) {
        total.allocated += bank.dir.stats().allocated;
        total.recycled += bank.dir.stats().recycled;
        total.rehashes += bank.dir.stats().rehashes;
    }
    return total;
}

bool
MemSystem::sharerTest(const DirEntry &e, sim::NodeId n) const
{
    return (e.sharers[n / 64] >> (n % 64)) & 1;
}

void
MemSystem::sharerSet(DirEntry &e, sim::NodeId n, bool v)
{
    if (v)
        e.sharers[n / 64] |= std::uint64_t{1} << (n % 64);
    else
        e.sharers[n / 64] &= ~(std::uint64_t{1} << (n % 64));
}

MemSystem::NodeVec
MemSystem::sharerList(const DirEntry &e, sim::NodeId exclude) const
{
    NodeVec out;
    for (sim::NodeId n = 0; n < numNodes_; ++n)
        if (n != exclude && sharerTest(e, n))
            out.push_back(n);
    return out;
}

coro::VersionedEvent &
MemSystem::watch(sim::NodeId node, sim::Addr line)
{
    // 16 node bits: the old << 9 packing aliased distinct (node, line)
    // pairs from 512 cores up — a silently shared watch event, i.e.
    // spurious (but not lost) wakeups. Host-side only either way.
    const std::uint64_t key = (line << 16) | node;
    return watches_[key];
}

void
MemSystem::invalidateL1(sim::NodeId node, sim::Addr line)
{
    if (CacheLine *cl = l1_[node].peek(line); cl && cl->valid())
        cl->state = CohState::Invalid;
    watch(node, line).raise();
}

void
MemSystem::installL1(sim::NodeId node, sim::Addr line, CohState state)
{
    // Reuse the existing slot on upgrades.
    if (CacheLine *cl = l1_[node].peek(line)) {
        l1_[node].install(cl, line, state);
        return;
    }
    CacheLine *victim = l1_[node].victimFor(line);
    if (victim->valid()) {
        const sim::Addr vline = victim->lineAddr;
        const bool dirty = victim->state == CohState::Modified ||
                           victim->state == CohState::Owned;
        invalidateL1(node, vline);
        if (dirty) {
            stats_.writebacks.inc();
            coro::spawnDetached(engine_, writebackTask(node, vline));
        }
        // Clean evictions are silent (the directory's sharer bit goes
        // stale; a future invalidation to this node is just wasted).
    }
    l1_[node].install(victim, line, state);
}

coro::Task<void>
MemSystem::writebackTask(sim::NodeId node, sim::Addr line)
{
    co_await mesh_.send(node, homeOf(line), cfg_.dataBits);
    DirEntry &e = dirEntry(line);
    co_await e.busy.lock();
    co_await coro::delay(engine_, cfg_.l2RtCycles);
    if (e.owner == node)
        e.owner = sim::kNoNode;
    sharerSet(e, node, false);
    e.inL2 = true;
    touchL2(line);
    e.busy.unlock();
}

void
MemSystem::touchL2(sim::Addr line)
{
    Bank &bank = banks_[homeOf(line)];
    if (CacheLine *hit = bank.tags.lookup(line))
        return (void)hit;
    CacheLine *victim = bank.tags.victimFor(line);
    if (victim->valid()) {
        const sim::Addr vline = victim->lineAddr;
        stats_.l2Recalls.inc();
        coro::spawnDetached(engine_, recallTask(homeOf(vline), vline));
    }
    bank.tags.install(victim, line, CohState::Shared);
}

coro::Task<void>
MemSystem::recallTask(sim::NodeId home, sim::Addr line)
{
    // L2 dropped the line: inclusive hierarchy must purge L1 copies.
    // The recall acks converge back on the home bank, so this is the
    // invLeg flow with requestor == home.
    DirEntry &e = dirEntry(line);
    co_await e.busy.lock();
    sim::InlineVec<coro::Task<void>, 4> legs;
    if (e.owner != sim::kNoNode)
        legs.push_back(invLeg(home, e.owner, home, line));
    for (const auto s : sharerList(e, numNodes_ /* exclude nobody */))
        if (s != e.owner)
            legs.push_back(invLeg(home, s, home, line));
    co_await coro::whenAll(engine_, std::move(legs));
    e.owner = sim::kNoNode;
    std::fill(e.sharers.begin(), e.sharers.end(), 0);
    e.inL2 = false;
    e.busy.unlock();
}

coro::Task<void>
MemSystem::dramAccess(sim::NodeId home, sim::Addr line)
{
    (void)home;
    coro::Resource &ctrl =
        *dramCtrls_[(line / cfg_.lineBytes) % cfg_.numMemCtrls];
    co_await ctrl.acquire();
    co_await coro::delay(engine_, cfg_.dramRtCycles);
    ctrl.release();
}

coro::Task<void>
MemSystem::homeDataLeg(sim::NodeId home, sim::NodeId requestor,
                       DirEntry &entry, sim::Addr line)
{
    if (!entry.inL2) {
        stats_.dramFetches.inc();
        co_await dramAccess(home, line);
        entry.inL2 = true;
        touchL2(line);
    }
    co_await mesh_.send(home, requestor, cfg_.dataBits);
}

coro::Task<void>
MemSystem::invLeg(sim::NodeId home, sim::NodeId sharer,
                  sim::NodeId requestor, sim::Addr line)
{
    co_await mesh_.send(home, sharer, cfg_.ctrlBits);
    co_await coro::delay(engine_, cfg_.l1RtCycles);
    invalidateL1(sharer, line);
    co_await mesh_.send(sharer, requestor, cfg_.ctrlBits); // ack
}

coro::Task<void>
MemSystem::probeLeg(sim::NodeId home, sim::NodeId owner,
                    sim::NodeId requestor, sim::Addr line, bool with_data)
{
    co_await mesh_.send(home, owner, cfg_.ctrlBits);
    co_await coro::delay(engine_, cfg_.l1RtCycles);
    invalidateL1(owner, line);
    co_await mesh_.send(owner, requestor,
                        with_data ? cfg_.dataBits : cfg_.ctrlBits);
}

coro::Task<void>
MemSystem::treeInvLeg(sim::NodeId home, const NodeVec &targets,
                      sim::NodeId requestor, sim::Addr line)
{
    co_await mesh_.multicast(
        home, std::span<const sim::NodeId>(targets.data(), targets.size()),
        cfg_.ctrlBits);
    co_await coro::delay(engine_, cfg_.l1RtCycles);
    sim::InlineVec<coro::Task<void>, 8> acks;
    acks.reserve(targets.size());
    for (const auto s : targets) {
        invalidateL1(s, line);
        acks.push_back(mesh_.send(s, requestor, cfg_.ctrlBits));
    }
    co_await coro::whenAll(engine_, std::move(acks));
}

coro::Task<void>
MemSystem::fetchLine(sim::NodeId node, sim::Addr line, bool exclusive,
                     sim::FunctionRef<void()> commit)
{
    const sim::NodeId home = homeOf(line);
    co_await mesh_.send(node, home, cfg_.ctrlBits);
    DirEntry &e = dirEntry(line);
    co_await e.busy.lock();
    co_await coro::delay(engine_, cfg_.l2RtCycles);

    CacheLine *own = l1_[node].peek(line);
    const bool own_readable = own && canRead(own->state);

    // Repair a stale owner pointer (silent E eviction, or ourselves).
    if (e.owner != sim::kNoNode) {
        CacheLine *oc = l1_[e.owner].peek(line);
        if (!(oc && isOwner(oc->state)))
            e.owner = sim::kNoNode;
    }

    if (!exclusive) {
        // ---- GetS ----
        if (own_readable) {
            // Raced with a transaction that already served us.
            commit();
            e.busy.unlock();
            co_return;
        }

        // Pipelined read paths: when serving the read requires no
        // directory state transition (the owner is already Owned, or
        // the L2 supplies and a Shared copy cannot be promoted to an
        // Exclusive grant), the home updates the sharer list and
        // releases the MSHR before the data leg, so a herd of readers
        // is serviced at lookup rate instead of round-trip rate — as
        // a non-blocking directory does. A racing invalidation is
        // detected via the watch generation: the late-arriving data
        // is then not installed (the copy was already invalidated in
        // flight).
        if (e.owner != sim::kNoNode && e.owner != node) {
            const sim::NodeId owner = e.owner;
            CacheLine *oc = l1_[owner].peek(line);
            if (oc && oc->state == CohState::Owned) {
                sharerSet(e, node, true);
                const std::uint64_t gen = watch(node, line).gen();
                e.busy.unlock();
                co_await mesh_.send(home, owner, cfg_.ctrlBits);
                co_await coro::delay(engine_, cfg_.l1RtCycles);
                co_await mesh_.send(owner, node, cfg_.dataBits);
                if (watch(node, line).gen() == gen)
                    installL1(node, line, CohState::Shared);
                commit();
                co_return;
            }
        }
        if (e.owner == sim::kNoNode && e.inL2 &&
            !sharerList(e, node).empty()) {
            sharerSet(e, node, true);
            const std::uint64_t gen = watch(node, line).gen();
            e.busy.unlock();
            co_await mesh_.send(home, node, cfg_.dataBits);
            if (watch(node, line).gen() == gen)
                installL1(node, line, CohState::Shared);
            commit();
            co_return;
        }

        bool data_done = false;
        if (e.owner != sim::kNoNode && e.owner != node) {
            const sim::NodeId owner = e.owner;
            co_await mesh_.send(home, owner, cfg_.ctrlBits);
            co_await coro::delay(engine_, cfg_.l1RtCycles);
            // Re-probe after the awaits: the owner may have evicted the
            // line for capacity while the probe was in flight.
            CacheLine *oc = l1_[owner].peek(line);
            if (oc && isOwner(oc->state)) {
                switch (oc->state) {
                  case CohState::Modified:
                    oc->state = CohState::Owned; // keeps supplying data
                    break;
                  case CohState::Exclusive:
                    oc->state = CohState::Shared;
                    e.owner = sim::kNoNode;
                    sharerSet(e, owner, true);
                    break;
                  default:
                    break; // Owned stays Owned
                }
                co_await mesh_.send(owner, node, cfg_.dataBits);
                data_done = true;
            } else {
                e.owner = sim::kNoNode;
            }
        }
        if (!data_done)
            co_await homeDataLeg(home, node, e, line);

        const bool sole =
            e.owner == sim::kNoNode && sharerList(e, node).empty();
        if (sole) {
            e.owner = node;
            sharerSet(e, node, false);
            installL1(node, line, CohState::Exclusive);
        } else {
            sharerSet(e, node, true);
            installL1(node, line, CohState::Shared);
        }
        commit();
        e.busy.unlock();
        co_return;
    }

    // ---- GetX / upgrade ----
    sim::InlineVec<coro::Task<void>, 4> legs;
    bool need_data = !own_readable;

    const sim::NodeId owner = e.owner;
    if (owner != sim::kNoNode && owner != node) {
        // Probe-invalidate the owner; it forwards data if we need it.
        legs.push_back(probeLeg(home, owner, node, line, need_data));
        stats_.invalidations.inc();
        need_data = false;
    }

    const auto sharers = sharerList(e, node);
    if (!sharers.empty() && mesh_.config().treeMulticast) {
        // Baseline+: one tree multicast delivers all invalidations,
        // then acks converge on the requestor in parallel.
        legs.push_back(treeInvLeg(home, sharers, node, line));
        stats_.invalidations.inc(sharers.size());
    } else {
        for (const auto s : sharers) {
            if (s == owner)
                continue;
            legs.push_back(invLeg(home, s, node, line));
            stats_.invalidations.inc();
        }
    }

    if (need_data)
        legs.push_back(homeDataLeg(home, node, e, line));

    co_await coro::whenAll(engine_, std::move(legs));

    std::fill(e.sharers.begin(), e.sharers.end(), 0);
    e.owner = node;
    installL1(node, line, CohState::Modified);
    commit();
    e.busy.unlock();
}

// ---- Fast-path plumbing -----------------------------------------------
//
// The factories below hand out either the frameless fast-mode Access
// (stats that the coroutine would charge before its first suspension
// are charged here instead — same event, same cycle) or the classic
// coroutine wrapped in slow mode. finishAccess runs at the L1
// round-trip instant: a hit commits and resumes the caller with no
// coroutine involved; a miss starts the ordinary transaction inline so
// the event stream matches the nested-coroutine path bit-for-bit.

MemSystem::Access<std::uint64_t>
MemSystem::load(sim::NodeId node, sim::Addr addr)
{
    if (!cfg_.fastpath || cfg_.l1RtCycles == 0)
        return Access<std::uint64_t>(loadTask(node, addr));
    stats_.loads.inc();
    return Access<std::uint64_t>(*this, OpKind::Load, node, addr, 0, 0);
}

MemSystem::Access<void>
MemSystem::store(sim::NodeId node, sim::Addr addr, std::uint64_t value)
{
    if (!cfg_.fastpath || cfg_.l1RtCycles == 0)
        return Access<void>(storeTask(node, addr, value));
    stats_.stores.inc();
    return Access<void>(*this, OpKind::Store, node, addr, value, 0);
}

MemSystem::Access<std::uint64_t>
MemSystem::fetchAdd(sim::NodeId node, sim::Addr addr, std::uint64_t delta)
{
    if (!cfg_.fastpath || cfg_.l1RtCycles == 0)
        return Access<std::uint64_t>(fetchAddTask(node, addr, delta));
    stats_.rmws.inc();
    return Access<std::uint64_t>(*this, OpKind::FetchAdd, node, addr,
                                 delta, 0);
}

MemSystem::Access<std::uint64_t>
MemSystem::swap(sim::NodeId node, sim::Addr addr, std::uint64_t value)
{
    if (!cfg_.fastpath || cfg_.l1RtCycles == 0)
        return Access<std::uint64_t>(swapTask(node, addr, value));
    stats_.rmws.inc();
    return Access<std::uint64_t>(*this, OpKind::Swap, node, addr, value,
                                 0);
}

MemSystem::Access<std::uint64_t>
MemSystem::testAndSet(sim::NodeId node, sim::Addr addr)
{
    return swap(node, addr, 1);
}

MemSystem::Access<CasResult>
MemSystem::cas(sim::NodeId node, sim::Addr addr, std::uint64_t expected,
               std::uint64_t desired)
{
    if (!cfg_.fastpath || cfg_.l1RtCycles == 0)
        return Access<CasResult>(casTask(node, addr, expected, desired));
    stats_.rmws.inc();
    return Access<CasResult>(*this, OpKind::Cas, node, addr, expected,
                             desired);
}

void
MemSystem::finishAccess(AccessBase &op)
{
    const sim::Addr line = l1_[op.node_].lineOf(op.addr_);
    const sim::Addr w = wordOf(op.addr_);
    CacheLine *cl = l1_[op.node_].lookup(line);
    switch (op.kind_) {
      case OpKind::Load:
        if (cl != nullptr && canRead(cl->state)) {
            stats_.l1Hits.inc();
            stats_.fastpathHits.inc();
            op.out_ = memory_.read64(w);
            op.caller_.resume();
            return;
        }
        stats_.l1Misses.inc();
        break;
      case OpKind::Store:
        if (cl != nullptr && canWrite(cl->state)) {
            stats_.l1Hits.inc();
            stats_.fastpathHits.inc();
            cl->state = CohState::Modified;
            memory_.write64(w, op.arg0_);
            op.caller_.resume();
            return;
        }
        if (CacheLine *pk = l1_[op.node_].peek(line);
            pk != nullptr && canRead(pk->state))
            stats_.upgrades.inc();
        else
            stats_.l1Misses.inc();
        break;
      case OpKind::FetchAdd:
        if (cl != nullptr && canWrite(cl->state)) {
            stats_.l1Hits.inc();
            stats_.fastpathHits.inc();
            cl->state = CohState::Modified;
            op.out_ = memory_.read64(w);
            memory_.write64(w, op.out_ + op.arg0_);
            op.caller_.resume();
            return;
        }
        break;
      case OpKind::Swap:
        if (cl != nullptr && canWrite(cl->state)) {
            stats_.l1Hits.inc();
            stats_.fastpathHits.inc();
            cl->state = CohState::Modified;
            op.out_ = memory_.read64(w);
            memory_.write64(w, op.arg0_);
            op.caller_.resume();
            return;
        }
        break;
      case OpKind::Cas:
        if (cl != nullptr && canWrite(cl->state)) {
            stats_.l1Hits.inc();
            stats_.fastpathHits.inc();
            cl->state = CohState::Modified;
            op.out_ = memory_.read64(w);
            op.flag_ = op.out_ == op.arg0_;
            if (op.flag_)
                memory_.write64(w, op.arg1_);
            op.caller_.resume();
            return;
        }
        break;
    }
    // Miss/upgrade: run the classic transaction, started inline so its
    // first message goes out in this very event (as the coroutine
    // path's would), completing back into the suspended caller.
    stats_.fastpathFallbacks.inc();
    op.t0_ = engine_.now();
    struct MissDone
    {
        AccessBase *op;
        void
        operator()() const
        {
            MemSystem &ms = *op->ms_;
            if (op->kind_ == OpKind::Load || op->kind_ == OpKind::Store)
                ms.stats_.missLatency.sample(
                    static_cast<double>(ms.engine_.now() - op->t0_));
            op->caller_.resume();
        }
    };
    coro::spawnInline(engine_, accessMissTask(op), MissDone{&op});
}

coro::Task<void>
MemSystem::accessMissTask(AccessBase &op)
{
    const sim::Addr line = l1_[op.node_].lineOf(op.addr_);
    const sim::Addr w = wordOf(op.addr_);
    switch (op.kind_) {
      case OpKind::Load:
        co_await fetchLine(op.node_, line, false,
                           [&] { op.out_ = memory_.read64(w); });
        break;
      case OpKind::Store:
        co_await fetchLine(op.node_, line, true,
                           [&] { memory_.write64(w, op.arg0_); });
        break;
      case OpKind::FetchAdd:
        co_await fetchLine(op.node_, line, true, [&] {
            op.out_ = memory_.read64(w);
            memory_.write64(w, op.out_ + op.arg0_);
        });
        break;
      case OpKind::Swap:
        co_await fetchLine(op.node_, line, true, [&] {
            op.out_ = memory_.read64(w);
            memory_.write64(w, op.arg0_);
        });
        break;
      case OpKind::Cas:
        co_await fetchLine(op.node_, line, true, [&] {
            op.out_ = memory_.read64(w);
            op.flag_ = op.out_ == op.arg0_;
            if (op.flag_)
                memory_.write64(w, op.arg1_);
        });
        break;
    }
}

coro::Task<std::uint64_t>
MemSystem::loadTask(sim::NodeId node, sim::Addr addr)
{
    stats_.loads.inc();
    const sim::Addr line = l1_[node].lineOf(addr);
    co_await coro::delay(engine_, cfg_.l1RtCycles);
    if (CacheLine *cl = l1_[node].lookup(line); cl && canRead(cl->state)) {
        stats_.l1Hits.inc();
        co_return memory_.read64(wordOf(addr));
    }
    stats_.l1Misses.inc();
    const sim::Cycle t0 = engine_.now();
    std::uint64_t out = 0;
    co_await fetchLine(node, line, false,
                       [&] { out = memory_.read64(wordOf(addr)); });
    stats_.missLatency.sample(static_cast<double>(engine_.now() - t0));
    co_return out;
}

coro::Task<void>
MemSystem::storeTask(sim::NodeId node, sim::Addr addr,
                     std::uint64_t value)
{
    stats_.stores.inc();
    const sim::Addr line = l1_[node].lineOf(addr);
    co_await coro::delay(engine_, cfg_.l1RtCycles);
    if (CacheLine *cl = l1_[node].lookup(line); cl && canWrite(cl->state)) {
        stats_.l1Hits.inc();
        cl->state = CohState::Modified;
        memory_.write64(wordOf(addr), value);
        co_return;
    }
    if (CacheLine *cl = l1_[node].peek(line); cl && canRead(cl->state))
        stats_.upgrades.inc();
    else
        stats_.l1Misses.inc();
    const sim::Cycle t0 = engine_.now();
    co_await fetchLine(node, line, true,
                       [&] { memory_.write64(wordOf(addr), value); });
    stats_.missLatency.sample(static_cast<double>(engine_.now() - t0));
}

coro::Task<std::uint64_t>
MemSystem::fetchAddTask(sim::NodeId node, sim::Addr addr,
                        std::uint64_t delta)
{
    stats_.rmws.inc();
    const sim::Addr line = l1_[node].lineOf(addr);
    const sim::Addr w = wordOf(addr);
    co_await coro::delay(engine_, cfg_.l1RtCycles);
    if (CacheLine *cl = l1_[node].lookup(line); cl && canWrite(cl->state)) {
        stats_.l1Hits.inc();
        cl->state = CohState::Modified;
        const std::uint64_t old = memory_.read64(w);
        memory_.write64(w, old + delta);
        co_return old;
    }
    std::uint64_t old = 0;
    co_await fetchLine(node, line, true, [&] {
        old = memory_.read64(w);
        memory_.write64(w, old + delta);
    });
    co_return old;
}

coro::Task<std::uint64_t>
MemSystem::swapTask(sim::NodeId node, sim::Addr addr,
                    std::uint64_t value)
{
    stats_.rmws.inc();
    const sim::Addr line = l1_[node].lineOf(addr);
    const sim::Addr w = wordOf(addr);
    co_await coro::delay(engine_, cfg_.l1RtCycles);
    if (CacheLine *cl = l1_[node].lookup(line); cl && canWrite(cl->state)) {
        stats_.l1Hits.inc();
        cl->state = CohState::Modified;
        const std::uint64_t old = memory_.read64(w);
        memory_.write64(w, value);
        co_return old;
    }
    std::uint64_t old = 0;
    co_await fetchLine(node, line, true, [&] {
        old = memory_.read64(w);
        memory_.write64(w, value);
    });
    co_return old;
}

coro::Task<CasResult>
MemSystem::casTask(sim::NodeId node, sim::Addr addr,
                   std::uint64_t expected, std::uint64_t desired)
{
    stats_.rmws.inc();
    const sim::Addr line = l1_[node].lineOf(addr);
    const sim::Addr w = wordOf(addr);
    co_await coro::delay(engine_, cfg_.l1RtCycles);
    if (CacheLine *cl = l1_[node].lookup(line); cl && canWrite(cl->state)) {
        stats_.l1Hits.inc();
        cl->state = CohState::Modified;
        const std::uint64_t old = memory_.read64(w);
        if (old == expected)
            memory_.write64(w, desired);
        co_return CasResult{old, old == expected};
    }
    CasResult res{0, false};
    co_await fetchLine(node, line, true, [&] {
        res.oldValue = memory_.read64(w);
        res.success = res.oldValue == expected;
        if (res.success)
            memory_.write64(w, desired);
    });
    co_return res;
}

coro::Task<std::uint64_t>
MemSystem::spinUntil(sim::NodeId node, sim::Addr addr,
                     std::function<bool(std::uint64_t)> pred)
{
    const sim::Addr line = l1_[node].lineOf(addr);
    for (;;) {
        coro::VersionedEvent &ev = watch(node, line);
        const std::uint64_t gen = ev.gen();
        const std::uint64_t v = co_await load(node, addr);
        if (pred(v))
            co_return v;
        // Sleep until our cached copy is invalidated (someone wrote
        // the line). The generation check closes the window between
        // the load and this wait.
        co_await ev.waitChangedSince(gen);
    }
}

CohState
MemSystem::l1State(sim::NodeId node, sim::Addr addr)
{
    const sim::Addr line = l1_[node].lineOf(addr);
    CacheLine *cl = l1_[node].peek(line);
    return cl ? cl->state : CohState::Invalid;
}

} // namespace wisync::mem
