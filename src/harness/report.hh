/**
 * @file
 * Text reporting helpers shared by the benchmark harnesses: aligned
 * tables, geometric means, and sweep controls.
 */

#ifndef WISYNC_HARNESS_REPORT_HH
#define WISYNC_HARNESS_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace wisync::harness {

/** A printable table with a title, column headers, and string cells. */
class TextTable
{
  public:
    explicit TextTable(std::string title) : title_(std::move(title)) {}

    void header(std::vector<std::string> cols);
    void row(std::vector<std::string> cells);

    /** Right-aligned, column-fitted dump. */
    void print(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Geometric mean of positive values (0 on empty input). */
double geomean(const std::vector<double> &values);

/** Arithmetic mean (0 on empty input). */
double mean(const std::vector<double> &values);

/** Format helpers. */
std::string fmt(double v, int precision = 2);
std::string fmtCycles(std::uint64_t cycles);

/**
 * Sweep size control: WISYNC_QUICK=1 trims sweeps for smoke runs,
 * WISYNC_FULL=1 extends them to the paper's full ranges. Default is a
 * balanced set that regenerates every figure in minutes.
 */
enum class SweepMode
{
    Quick,
    Default,
    Full,
};

SweepMode sweepMode();

} // namespace wisync::harness

#endif // WISYNC_HARNESS_REPORT_HH
