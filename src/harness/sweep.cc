#include "harness/sweep.hh"

#include <cstdlib>
#include <cstring>
#include <utility>

namespace wisync::harness {

bool
SweepHarness::reuseEnabled()
{
    static const bool enabled = [] {
        const char *v = std::getenv("WISYNC_NO_REUSE");
        return v == nullptr || std::strcmp(v, "0") == 0 || *v == '\0';
    }();
    return enabled;
}

std::size_t
SweepHarness::capacity()
{
    static const std::size_t cap = [] {
        const char *v = std::getenv("WISYNC_SWEEP_CACHE");
        if (v != nullptr && *v != '\0') {
            const long n = std::strtol(v, nullptr, 10);
            if (n > 0)
                return static_cast<std::size_t>(n);
        }
        return std::size_t{4};
    }();
    return cap;
}

core::Machine &
SweepHarness::acquire(const core::MachineConfig &cfg)
{
    if (reuseEnabled()) {
        for (std::size_t i = 0; i < machines_.size(); ++i) {
            if (machines_[i]->config().compatibleShape(cfg)) {
                // Move to the MRU end, reset, serve.
                auto m = std::move(machines_[i]);
                machines_.erase(machines_.begin() +
                                static_cast<std::ptrdiff_t>(i));
                m->reset(cfg);
                machines_.push_back(std::move(m));
                ++reuses_;
                return *machines_.back();
            }
        }
        // Evict least-recently-used shapes so their pages recycle into
        // the build below instead of staying pinned under dead tags.
        while (machines_.size() >= capacity())
            machines_.erase(machines_.begin());
    } else {
        // A/B mode: every sweep point pays the full build, matching
        // the pre-reuse behaviour (cache cleared so memory use stays
        // comparable to one machine per point).
        machines_.clear();
    }
    machines_.push_back(std::make_unique<core::Machine>(cfg));
    ++builds_;
    return *machines_.back();
}

} // namespace wisync::harness
