#include "harness/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace wisync::harness {

void
TextTable::header(std::vector<std::string> cols)
{
    header_ = std::move(cols);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto fit = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t c = 0; c < cells.size(); ++c)
            widths[c] = std::max(widths[c], cells[c].size());
    };
    fit(header_);
    for (const auto &r : rows_)
        fit(r);

    os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &s = c < cells.size() ? cells[c] : "";
            os << (c == 0 ? "" : "  ");
            // Left-align the first column, right-align the rest.
            if (c == 0) {
                os << s << std::string(widths[c] - s.size(), ' ');
            } else {
                os << std::string(widths[c] - s.size(), ' ') << s;
            }
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
    os << "\n";
    os.flush();
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (const double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

std::string
fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtCycles(std::uint64_t cycles)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(cycles));
    return buf;
}

SweepMode
sweepMode()
{
    if (const char *q = std::getenv("WISYNC_QUICK"); q && q[0] == '1')
        return SweepMode::Quick;
    if (const char *f = std::getenv("WISYNC_FULL"); f && f[0] == '1')
        return SweepMode::Full;
    return SweepMode::Default;
}

} // namespace wisync::harness
