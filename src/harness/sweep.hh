/**
 * @file
 * Machine reuse across sweep points.
 *
 * Every figure bench is a sweep over (config kind, core count,
 * variant, workload parameters); rebuilding the full Machine — mesh,
 * caches, directory, BM replicas — at each point dominates the sweep's
 * wall time. The harness keeps one Machine per structural shape
 * (MachineConfig::compatibleShape) and serves later points on that
 * shape through Machine::reset, which is observationally identical to
 * a fresh build (locked by tests/test_machine_reset.cc), so the
 * figures are bit-for-bit unchanged.
 *
 * Setting WISYNC_NO_REUSE=1 disables reuse (every acquire builds a
 * fresh machine); bench/run_bench.sh --sweep uses that for same-runner
 * A/B wall-time comparisons recorded in BENCH_sweep.json.
 */

#ifndef WISYNC_HARNESS_SWEEP_HH
#define WISYNC_HARNESS_SWEEP_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/machine.hh"

namespace wisync::harness {

/**
 * Cache of reusable Machines, keyed by structural shape.
 *
 * The cache is LRU-bounded (default 4 shapes, WISYNC_SWEEP_CACHE
 * overrides): a figure sweep touches at most the four ConfigKinds per
 * core count, while an unbounded cache across a core-count sweep
 * would pin hundreds of megabytes of dead tag arrays — blocking the
 * allocator from recycling those (warm) pages into the next build,
 * which is slower than not caching at all.
 */
class SweepHarness
{
  public:
    SweepHarness() = default;

    /**
     * A machine configured exactly per @p cfg, ready to run from
     * cycle 0: either a reset shape-compatible cached machine or a
     * fresh build. Treat the reference as valid only until the next
     * acquire(): with reuse on it actually lives until the shape ages
     * out of the LRU cache, but in WISYNC_NO_REUSE mode every acquire
     * destroys the previous machine first.
     */
    core::Machine &acquire(const core::MachineConfig &cfg);

    /** Machines constructed / served by reset so far. */
    std::uint64_t builds() const { return builds_; }
    std::uint64_t reuses() const { return reuses_; }

    /** Drop every cached machine. */
    void clear() { machines_.clear(); }

    /** Max cached shapes (WISYNC_SWEEP_CACHE, default 4). */
    static std::size_t capacity();

    /** False when WISYNC_NO_REUSE=1 (A/B measurement mode). */
    static bool reuseEnabled();

  private:
    /** Most-recently-used machine last. */
    std::vector<std::unique_ptr<core::Machine>> machines_;
    std::uint64_t builds_ = 0;
    std::uint64_t reuses_ = 0;
};

} // namespace wisync::harness

#endif // WISYNC_HARNESS_SWEEP_HH
