/**
 * @file
 * Multi-threaded sweep driver for figure regeneration.
 *
 * Every figure is a grid of *independent* simulations: (ConfigKind x
 * core count x workload parameters) points whose only shared state is
 * the table printed at the end. ParallelSweep lets a bench declare
 * that grid up front and fans it out over N host threads:
 *
 *   - each worker owns a private SweepHarness (machine cache), so
 *     Machine reuse via reset() keeps working per worker; the frame
 *     pool and scheduler chunk caches are already thread-local;
 *   - points are block-distributed over per-worker job queues and
 *     idle workers steal from the tail of a victim's queue, so a grid
 *     of wildly uneven point costs (256-core points next to 16-core
 *     ones) still load-balances;
 *   - results are merged by point index, so the returned vector is in
 *     add() order regardless of completion order.
 *
 * Determinism contract: each point's simulation depends only on its
 * MachineConfig (fresh build and reset reuse are observationally
 * identical — tests/test_machine_reset.cc), so the merged results are
 * bit-identical for every thread count, worker assignment and
 * completion order. tests/test_parallel_sweep.cc locks this down,
 * including a forced straggler inversion.
 *
 * Results stream into the merge table as points complete (the merge
 * is by index, so streaming cannot reorder it): onPointComplete()
 * registers an observer called from the completing worker, and
 * WISYNC_SWEEP_PROGRESS=1 emits a stderr line per completed point —
 * both see completion order, while run()'s return stays in add()
 * order. A worker whose queue (and every victim's) has drained parks
 * on a condition variable until the grid finishes instead of exiting
 * through a scan race — with thousands-of-point grids this keeps idle
 * workers asleep, not rescanning.
 *
 * Thread count: WISYNC_SWEEP_THREADS, default = hardware concurrency;
 * 1 reproduces the serial path exactly (one SweepHarness on the
 * calling thread, no workers spawned).
 */

#ifndef WISYNC_HARNESS_PARALLEL_SWEEP_HH
#define WISYNC_HARNESS_PARALLEL_SWEEP_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/machine_config.hh"
#include "workloads/kernel_result.hh"

namespace wisync::core {
class Machine;
}

namespace wisync::harness {

/**
 * One grid point: the machine to prepare (built fresh or served by
 * reset from the worker's cache) and the workload to run on it.
 */
struct SweepPoint
{
    core::MachineConfig config;
    std::function<workloads::KernelResult(core::Machine &)> body;
};

/**
 * One point's outcome under the error-capturing run mode
 * (runCaptured): either a result (ok == true) or the typed per-point
 * failure that produced it (ok == false, result zero-initialized,
 * error holding the exception's what()). A long-lived sweep service
 * must answer "this one point failed" per point, not abandon a
 * thousand-point batch because one config livelocked.
 */
struct PointOutcome
{
    workloads::KernelResult result;
    bool ok = false;
    /** Empty when ok; the body exception's what() otherwise. */
    std::string error;
};

/** A declarative sweep grid plus the work-stealing driver over it. */
class ParallelSweep
{
  public:
    ParallelSweep() = default;

    /**
     * Append a point; @return its index — also its position in the
     * vector run() returns. @p body runs on a worker thread; anything
     * it captures must stay valid until run() returns and must not be
     * mutated by other points' bodies.
     */
    std::size_t add(core::MachineConfig config,
                    std::function<workloads::KernelResult(core::Machine &)>
                        body);

    std::size_t size() const { return points_.size(); }

    /**
     * Observe each point's result the moment it completes (before
     * run() returns the merged vector). Called in completion order —
     * indices arrive out of order on multi-worker runs — from the
     * completing worker's thread, serialized by an internal mutex.
     * The callback must not touch the sweep itself.
     */
    void
    onPointComplete(
        std::function<void(std::size_t index,
                           const workloads::KernelResult &result)> fn)
    {
        onPoint_ = std::move(fn);
    }

    /**
     * As onPointComplete, but observing the full PointOutcome —
     * including captured per-point failures under runCaptured(),
     * which onPointComplete never sees (it only streams successful
     * results). Same threading contract: completion order, completing
     * worker's thread, serialized with onPointComplete by the same
     * internal mutex.
     */
    void
    onOutcomeComplete(
        std::function<void(std::size_t index, const PointOutcome &outcome)>
            fn)
    {
        onOutcome_ = std::move(fn);
    }

    /** WISYNC_SWEEP_PROGRESS=1: stderr line per completed point. */
    static bool progressEnabled();

    /**
     * Run every point on @p threads workers (clamped to the grid
     * size) and return the results in add() order. The grid is left
     * intact, so the same sweep can be re-run — tests use that for
     * cross-thread-count comparisons.
     *
     * A throwing point body is batch-fatal: the first exception stops
     * every worker before its next point and is rethrown here — the
     * right behavior for benches, where a failing point means the
     * whole figure is wrong. Service front-ends use runCaptured().
     */
    std::vector<workloads::KernelResult> run(unsigned threads);

    /** run(threads()) — the environment-selected width. */
    std::vector<workloads::KernelResult> run();

    /**
     * As run(), but a throwing point body is captured as a typed
     * per-point error in the merged outcomes instead of stopping the
     * batch: the worker records what(), marks the point failed and
     * moves on to its next job. Successful points are bit-identical
     * to what run() would have produced — capture changes error
     * routing only, never simulation. Observer (onPointComplete)
     * exceptions remain batch-fatal in both modes: the observer is
     * harness code, not a sweep point.
     */
    std::vector<PointOutcome> runCaptured(unsigned threads);

    /** runCaptured(threads()) — the environment-selected width. */
    std::vector<PointOutcome> runCaptured();

    /** WISYNC_SWEEP_THREADS, default hardware concurrency (min 1). */
    static unsigned threads();

  private:
    /** Shared driver behind run()/runCaptured(); see their docs. */
    std::vector<PointOutcome> execute(unsigned threads, bool capture);

    std::vector<SweepPoint> points_;
    std::function<void(std::size_t, const workloads::KernelResult &)>
        onPoint_;
    std::function<void(std::size_t, const PointOutcome &)> onOutcome_;
};

} // namespace wisync::harness

#endif // WISYNC_HARNESS_PARALLEL_SWEEP_HH
