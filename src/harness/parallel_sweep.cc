#include "harness/parallel_sweep.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "harness/sweep.hh"
#include "sim/logging.hh"

namespace wisync::harness {

namespace {

/**
 * One worker's job queue. A plain mutex per queue is plenty: jobs are
 * whole simulations (milliseconds to seconds), so queue operations are
 * nowhere near contended enough to justify a lock-free deque.
 */
struct WorkerQueue
{
    std::mutex mutex;
    std::deque<std::size_t> jobs;

    /** Owner takes from the front (preserves block order = reuse locality). */
    std::optional<std::size_t>
    popOwn()
    {
        std::lock_guard<std::mutex> g(mutex);
        if (jobs.empty())
            return std::nullopt;
        const std::size_t i = jobs.front();
        jobs.pop_front();
        return i;
    }

    /** Thieves take from the back (the owner's coldest work). */
    std::optional<std::size_t>
    steal()
    {
        std::lock_guard<std::mutex> g(mutex);
        if (jobs.empty())
            return std::nullopt;
        const std::size_t i = jobs.back();
        jobs.pop_back();
        return i;
    }
};

} // namespace

std::size_t
ParallelSweep::add(core::MachineConfig config,
                   std::function<workloads::KernelResult(core::Machine &)>
                       body)
{
    points_.push_back(SweepPoint{std::move(config), std::move(body)});
    return points_.size() - 1;
}

unsigned
ParallelSweep::threads()
{
    static const unsigned n = [] {
        if (const char *v = std::getenv("WISYNC_SWEEP_THREADS");
            v != nullptr && *v != '\0') {
            const long parsed = std::strtol(v, nullptr, 10);
            if (parsed > 0)
                return static_cast<unsigned>(parsed);
        }
        return std::max(1u, std::thread::hardware_concurrency());
    }();
    return n;
}

bool
ParallelSweep::progressEnabled()
{
    static const bool on = [] {
        const char *v = std::getenv("WISYNC_SWEEP_PROGRESS");
        return v != nullptr && *v != '\0' && *v != '0';
    }();
    return on;
}

std::vector<workloads::KernelResult>
ParallelSweep::run()
{
    return run(threads());
}

std::vector<PointOutcome>
ParallelSweep::runCaptured()
{
    return runCaptured(threads());
}

std::vector<workloads::KernelResult>
ParallelSweep::run(unsigned threads)
{
    std::vector<PointOutcome> outcomes = execute(threads, false);
    std::vector<workloads::KernelResult> results(outcomes.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i)
        results[i] = outcomes[i].result;
    return results;
}

std::vector<PointOutcome>
ParallelSweep::runCaptured(unsigned threads)
{
    return execute(threads, true);
}

std::vector<PointOutcome>
ParallelSweep::execute(unsigned threads, bool capture)
{
    std::vector<PointOutcome> results(points_.size());
    if (points_.empty())
        return results;

    const unsigned nworkers = static_cast<unsigned>(std::min<std::size_t>(
        std::max(1u, threads), points_.size()));

    // Completion-order streaming: results land in the merge table the
    // moment a point finishes; the observer and the progress line see
    // them then, while the returned vector stays in add() order.
    const bool progress = progressEnabled();
    std::mutex emit_mutex;
    std::size_t emitted = 0;
    auto emit = [&](std::size_t index) {
        if (!progress && !onPoint_ && !onOutcome_)
            return;
        std::lock_guard<std::mutex> g(emit_mutex);
        ++emitted;
        // onPoint_ streams results: a captured failure has none, so
        // only the outcome observer (and the progress line) sees it.
        if (onPoint_ && results[index].ok)
            onPoint_(index, results[index].result);
        if (onOutcome_)
            onOutcome_(index, results[index]);
        if (progress)
            std::fprintf(stderr, "[wisync-sweep] %zu/%zu points done "
                                 "(point %zu)\n",
                         emitted, points_.size(), index);
    };

    // Runs one point's body, routing exceptions per mode: capture
    // records the typed per-point failure and lets the sweep continue;
    // the default rethrows, making the failure batch-fatal.
    auto runPoint = [&](SweepHarness &machines, std::size_t i) {
        try {
            results[i].result =
                points_[i].body(machines.acquire(points_[i].config));
            results[i].ok = true;
        } catch (const std::exception &e) {
            if (!capture)
                throw;
            results[i].error = e.what();
        } catch (...) {
            if (!capture)
                throw;
            results[i].error = "unknown exception";
        }
    };

    if (nworkers == 1) {
        // The serial path: one harness on the calling thread, grid
        // order — exactly the pre-parallel benches.
        SweepHarness machines;
        for (std::size_t i = 0; i < points_.size(); ++i) {
            runPoint(machines, i);
            emit(i);
        }
        return results;
    }

    // Block-distribute the grid: contiguous ranges keep neighbouring
    // points (usually the same structural shape) on one worker, so the
    // per-worker machine caches hit about as often as the serial run's.
    std::vector<WorkerQueue> queues(nworkers);
    for (std::size_t i = 0; i < points_.size(); ++i) {
        const std::size_t w = i * nworkers / points_.size();
        queues[w].jobs.push_back(i);
    }

    // No point ever enqueues more work, so once a worker's own queue
    // and every victim's read empty, all remaining points are already
    // owned by running workers. Instead of exiting through that scan
    // (a rescan race on big grids), the idle worker parks on a
    // condition variable until the whole grid drains or a worker
    // fails — it sleeps, it does not poll.
    std::exception_ptr first_error;
    std::mutex idle_mutex;
    std::condition_variable idle_cv;
    std::size_t remaining = points_.size();
    std::atomic<bool> failed{false};
    auto worker = [&](unsigned self) {
        // Worker-private machine cache: machines are built, reset, run
        // and destroyed on this thread only (the frame pool and the
        // scheduler's chunk cache are thread-local).
        SweepHarness machines;
        while (!failed.load(std::memory_order_relaxed)) {
            std::optional<std::size_t> job = queues[self].popOwn();
            for (unsigned v = 1; !job && v < nworkers; ++v)
                job = queues[(self + v) % nworkers].steal();
            if (!job) {
                std::unique_lock<std::mutex> l(idle_mutex);
                idle_cv.wait(l, [&] {
                    return remaining == 0 ||
                           failed.load(std::memory_order_relaxed);
                });
                return;
            }
            try {
                runPoint(machines, *job);
                // Inside the try: an observer that throws must stop
                // the sweep like a failing body, not terminate the
                // process from a worker thread (in capture mode the
                // body's exception never reaches here — only observer
                // failures stay batch-fatal).
                emit(*job);
            } catch (...) {
                // Record the first error and stop every worker before
                // its next point — a long grid should not simulate to
                // completion only to discard the results.
                {
                    std::lock_guard<std::mutex> g(idle_mutex);
                    if (!first_error)
                        first_error = std::current_exception();
                    failed.store(true, std::memory_order_relaxed);
                }
                idle_cv.notify_all();
                return;
            }
            {
                std::lock_guard<std::mutex> g(idle_mutex);
                if (--remaining == 0)
                    idle_cv.notify_all();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(nworkers - 1);
    for (unsigned w = 1; w < nworkers; ++w)
        pool.emplace_back(worker, w);
    worker(0);
    for (auto &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
    return results;
}

} // namespace wisync::harness
