#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace wisync::sim::detail {

[[noreturn]] void
panicImpl(const char *file, int line, std::string msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, std::string msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *file, int line, std::string msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

} // namespace wisync::sim::detail
