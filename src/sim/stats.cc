#include "sim/stats.hh"

#include <algorithm>
#include <bit>

namespace wisync::sim {

void
Accumulator::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

void
Accumulator::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

void
Histogram::sample(std::uint64_t v)
{
    acc_.sample(static_cast<double>(v));
    const unsigned b = v == 0 ? 0 : 63 - std::countl_zero(v);
    ++buckets_[b];
}

void
Histogram::reset()
{
    acc_.reset();
    std::fill(std::begin(buckets_), std::end(buckets_), 0);
}

std::uint64_t
Histogram::bucket(unsigned b) const
{
    return b < 64 ? buckets_[b] : 0;
}

void
StatSet::addCounter(std::string name, const Counter &c)
{
    counters_[std::move(name)] = &c;
}

void
StatSet::addAccumulator(std::string name, const Accumulator &a)
{
    accs_[std::move(name)] = &a;
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters_)
        os << name << " " << c->value() << "\n";
    for (const auto &[name, a] : accs_) {
        os << name << ".count " << a->count() << "\n";
        os << name << ".mean " << a->mean() << "\n";
        os << name << ".max " << a->max() << "\n";
    }
}

std::uint64_t
StatSet::counterValue(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second->value();
}

} // namespace wisync::sim
