/**
 * @file
 * Move-only type-erased callable, used for event callbacks.
 *
 * std::function requires copyability, which rules out lambdas that own
 * coroutine frames or other move-only resources. Unlike the original
 * minimal replacement, this version carries a 48-byte small-buffer
 * optimization: the lambdas scheduled on the hot path (a coroutine
 * handle, a `this` pointer, a pointer plus a counter) are stored inline
 * and never touch the heap, which is what makes the event kernel
 * allocation-free in steady state.
 *
 * Inline storage is reserved for trivially-copyable payloads so that
 * moving a UniqueFunction is always a plain byte copy (no per-type
 * relocation call, no possibility of interior-pointer breakage).
 * Anything larger or non-trivially-copyable — e.g. a detached task
 * wrapper owning a coroutine frame, or a lambda owning a vector —
 * transparently falls back to a heap allocation, exactly as before.
 */

#ifndef WISYNC_SIM_FUNCTION_HH
#define WISYNC_SIM_FUNCTION_HH

#include <coroutine>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace wisync::sim {

/** Move-only void() callable with small-buffer optimization. */
class UniqueFunction
{
  public:
    /** Payloads up to this size (and trivially copyable) stay inline. */
    static constexpr std::size_t kInlineSize = 48;
    static constexpr std::size_t kInlineAlign = alignof(void *);

    UniqueFunction() = default;

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, UniqueFunction>>>
    UniqueFunction(F &&f)
    {
        if constexpr (fitsInline<D>) {
            ::new (static_cast<void *>(storage_)) D(std::forward<F>(f));
            ops_ = &InlineOps<D>::ops;
        } else {
            D *p = new D(std::forward<F>(f));
            std::memcpy(storage_, &p, sizeof(p));
            ops_ = &HeapOps<D>::ops;
        }
    }

    /**
     * Wrap a coroutine resume. The handle is 8 bytes and trivially
     * copyable, so it always lands in the inline buffer; this is what
     * Engine::resumeHandle stores.
     */
    explicit UniqueFunction(std::coroutine_handle<> h)
        : UniqueFunction(HandleResume{h})
    {}

    // Relocation copies the whole inline buffer: payloads smaller than
    // the buffer leave trailing bytes uninitialized, which is benign
    // (they are never read through the payload type) but trips GCC's
    // -Wmaybe-uninitialized.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
    UniqueFunction(UniqueFunction &&other) noexcept : ops_(other.ops_)
    {
        if (ops_ != nullptr)
            std::memcpy(storage_, other.storage_, kInlineSize);
        other.ops_ = nullptr;
    }

    UniqueFunction &
    operator=(UniqueFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            if (other.ops_ != nullptr)
                std::memcpy(storage_, other.storage_, kInlineSize);
            ops_ = std::exchange(other.ops_, nullptr);
        }
        return *this;
    }
#pragma GCC diagnostic pop

    UniqueFunction(const UniqueFunction &) = delete;
    UniqueFunction &operator=(const UniqueFunction &) = delete;

    ~UniqueFunction() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    void operator()() { ops_->call(storage_); }

    /** True when the payload lives in the inline buffer (test hook). */
    bool usesInlineStorage() const { return ops_ && ops_->inlineStored; }

  private:
    struct HandleResume
    {
        std::coroutine_handle<> h;
        void operator()() const { h.resume(); }
    };

    struct Ops
    {
        void (*call)(void *);
        void (*destroy)(void *); // nullptr: trivially destructible inline
        bool inlineStored;
    };

    // Inline storage demands trivial copyability: moves are memcpy, and
    // trivially-copyable types are also trivially destructible, so the
    // inline path needs no destroy hook at all.
    template <typename D>
    static constexpr bool fitsInline =
        sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
        std::is_trivially_copyable_v<D>;

    template <typename D>
    struct InlineOps
    {
        static void
        call(void *p)
        {
            (*std::launder(reinterpret_cast<D *>(p)))();
        }
        static constexpr Ops ops{&call, nullptr, true};
    };

    template <typename D>
    struct HeapOps
    {
        static D *
        ptr(void *p)
        {
            D *d;
            std::memcpy(&d, p, sizeof(d));
            return d;
        }
        static void call(void *p) { (*ptr(p))(); }
        static void destroy(void *p) { delete ptr(p); }
        static constexpr Ops ops{&call, &destroy, false};
    };

    void
    reset()
    {
        if (ops_ && ops_->destroy)
            ops_->destroy(storage_);
        ops_ = nullptr;
    }

    alignas(kInlineAlign) unsigned char storage_[kInlineSize];
    const Ops *ops_ = nullptr;
};

/**
 * Non-owning reference to a callable (the `void()`-shaped cousin of
 * C++26 std::function_ref). Used for completion callbacks whose
 * referent provably outlives the call — e.g. a commit lambda living in
 * an awaiting coroutine frame — where std::function's copy + possible
 * heap allocation is pure waste.
 */
template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)>
{
  public:
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, FunctionRef> &&
                  std::is_invocable_r_v<R, F &, Args...>>>
    FunctionRef(F &&f) noexcept
        : obj_(const_cast<void *>(
              static_cast<const void *>(std::addressof(f)))),
          call_([](void *obj, Args... args) -> R {
              return (*static_cast<std::remove_reference_t<F> *>(obj))(
                  std::forward<Args>(args)...);
          })
    {}

    R
    operator()(Args... args) const
    {
        return call_(obj_, std::forward<Args>(args)...);
    }

  private:
    void *obj_;
    R (*call_)(void *, Args...);
};

} // namespace wisync::sim

#endif // WISYNC_SIM_FUNCTION_HH
