/**
 * @file
 * Move-only type-erased callable, used for event callbacks.
 *
 * std::function requires copyability, which rules out lambdas that own
 * coroutine frames or other move-only resources. This is a minimal
 * replacement (no small-buffer optimization; event rates in this
 * simulator make the allocation cost irrelevant next to model work).
 */

#ifndef WISYNC_SIM_FUNCTION_HH
#define WISYNC_SIM_FUNCTION_HH

#include <memory>
#include <utility>

namespace wisync::sim {

/** Move-only void() callable. */
class UniqueFunction
{
  public:
    UniqueFunction() = default;

    template <typename F>
    UniqueFunction(F &&f)
        : impl_(std::make_unique<Impl<std::decay_t<F>>>(std::forward<F>(f)))
    {}

    UniqueFunction(UniqueFunction &&) = default;
    UniqueFunction &operator=(UniqueFunction &&) = default;
    UniqueFunction(const UniqueFunction &) = delete;
    UniqueFunction &operator=(const UniqueFunction &) = delete;

    explicit operator bool() const { return impl_ != nullptr; }

    void operator()() { impl_->call(); }

  private:
    struct Base
    {
        virtual ~Base() = default;
        virtual void call() = 0;
    };

    template <typename F>
    struct Impl : Base
    {
        explicit Impl(F &&f) : fn(std::move(f)) {}
        explicit Impl(const F &f) : fn(f) {}
        void call() override { fn(); }
        F fn;
    };

    std::unique_ptr<Base> impl_;
};

} // namespace wisync::sim

#endif // WISYNC_SIM_FUNCTION_HH
