/**
 * @file
 * Small vector with inline capacity.
 *
 * The per-message hot paths (mesh routes, multicast destination lists,
 * directory sharer lists, parallel transaction legs) build short,
 * bounded sequences thousands of times per simulated kernel; a
 * std::vector pays a heap allocation for each. InlineVec stores up to
 * N elements in the object itself — which usually lives in a pooled
 * coroutine frame — and only touches the allocator when a sequence
 * outgrows the inline buffer (large meshes, chip-wide invalidation
 * storms), so the common case is allocation-free while correctness is
 * unbounded.
 *
 * Deliberately minimal: grow-only capacity, no copy (the model moves
 * ownership or passes views), clear() keeps the spilled buffer so a
 * reused vector stays warm. Supports move-only element types (Task
 * handles) as well as trivial ones (link ids, node ids).
 */

#ifndef WISYNC_SIM_INLINE_VEC_HH
#define WISYNC_SIM_INLINE_VEC_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace wisync::sim {

template <typename T, std::size_t N>
class InlineVec
{
    static_assert(N > 0, "inline capacity must be nonzero");
    static_assert(std::is_nothrow_move_constructible_v<T>,
                  "growth relocates by move; it must not throw");

  public:
    using value_type = T;
    using iterator = T *;
    using const_iterator = const T *;

    InlineVec() = default;

    InlineVec(InlineVec &&other) noexcept { moveFrom(other); }

    InlineVec &
    operator=(InlineVec &&other) noexcept
    {
        if (this != &other) {
            destroyAll();
            releaseHeap();
            moveFrom(other);
        }
        return *this;
    }

    InlineVec(const InlineVec &) = delete;
    InlineVec &operator=(const InlineVec &) = delete;

    ~InlineVec()
    {
        destroyAll();
        releaseHeap();
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return cap_; }
    /** True while no element has spilled out of the inline buffer. */
    bool inlineStorage() const { return data_ == inlinePtr(); }

    T *data() { return data_; }
    const T *data() const { return data_; }
    iterator begin() { return data_; }
    iterator end() { return data_ + size_; }
    const_iterator begin() const { return data_; }
    const_iterator end() const { return data_ + size_; }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }
    T &front() { return data_[0]; }
    const T &front() const { return data_[0]; }
    T &back() { return data_[size_ - 1]; }
    const T &back() const { return data_[size_ - 1]; }

    void
    push_back(T v)
    {
        if (size_ == cap_)
            grow(cap_ * 2);
        ::new (static_cast<void *>(data_ + size_)) T(std::move(v));
        ++size_;
    }

    template <typename... Args>
    T &
    emplace_back(Args &&...args)
    {
        if (size_ == cap_)
            grow(cap_ * 2);
        T *slot = ::new (static_cast<void *>(data_ + size_))
            T(std::forward<Args>(args)...);
        ++size_;
        return *slot;
    }

    void
    pop_back()
    {
        --size_;
        data_[size_].~T();
    }

    void
    reserve(std::size_t want)
    {
        if (want > cap_)
            grow(want);
    }

    /** Drop all elements; inline or spilled capacity is retained. */
    void
    clear()
    {
        destroyAll();
        size_ = 0;
    }

  private:
    T *inlinePtr() { return std::launder(reinterpret_cast<T *>(inline_)); }
    const T *
    inlinePtr() const
    {
        return std::launder(reinterpret_cast<const T *>(inline_));
    }

    void
    grow(std::size_t want)
    {
        const std::size_t cap = want < 2 * cap_ ? 2 * cap_ : want;
        T *heap = static_cast<T *>(
            ::operator new(cap * sizeof(T), std::align_val_t{alignof(T)}));
        for (std::size_t i = 0; i < size_; ++i) {
            ::new (static_cast<void *>(heap + i)) T(std::move(data_[i]));
            data_[i].~T();
        }
        releaseHeap();
        data_ = heap;
        cap_ = cap;
    }

    void
    destroyAll()
    {
        for (std::size_t i = 0; i < size_; ++i)
            data_[i].~T();
    }

    void
    releaseHeap()
    {
        if (data_ != inlinePtr())
            ::operator delete(data_, std::align_val_t{alignof(T)});
    }

    /** Steal @p other's contents; *this must be empty/unowned. */
    void
    moveFrom(InlineVec &other) noexcept
    {
        if (!other.inlineStorage()) {
            // Steal the spilled buffer wholesale.
            data_ = std::exchange(other.data_, other.inlinePtr());
            cap_ = std::exchange(other.cap_, N);
            size_ = std::exchange(other.size_, 0);
            return;
        }
        data_ = inlinePtr();
        cap_ = N;
        size_ = other.size_;
        for (std::size_t i = 0; i < size_; ++i) {
            ::new (static_cast<void *>(data_ + i))
                T(std::move(other.data_[i]));
            other.data_[i].~T();
        }
        other.size_ = 0;
    }

    alignas(T) std::byte inline_[N * sizeof(T)];
    T *data_ = inlinePtr();
    std::size_t size_ = 0;
    std::size_t cap_ = N;
};

} // namespace wisync::sim

#endif // WISYNC_SIM_INLINE_VEC_HH
