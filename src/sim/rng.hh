/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The simulator must be reproducible run-to-run: every stochastic
 * component (MAC backoff, workload interarrival jitter, cache-victim
 * tie-breaks) draws from its own Rng stream derived from the machine
 * seed, so adding a component never perturbs the draws of another.
 *
 * Implementation: xoshiro256** (Blackman & Vigna), seeded through
 * splitmix64. Both are public-domain algorithms.
 */

#ifndef WISYNC_SIM_RNG_HH
#define WISYNC_SIM_RNG_HH

#include <cstdint>

namespace wisync::sim {

/**
 * splitmix64 finaliser: a cheap, high-quality 64-bit mixer. Shared by
 * the RNG seeding and the order-independent state fingerprints
 * (mem::Memory, bm::BmStore).
 */
inline std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** xoshiro256** generator with convenience distributions. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Reinitialise to the exact state of a fresh Rng(seed). */
    void reseed(std::uint64_t seed);

    /** Derive an independent child stream (for per-component RNGs). */
    Rng fork();

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound), bound > 0. Unbiased rejection. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability p of true. */
    bool chance(double p) { return uniform() < p; }

  private:
    std::uint64_t s_[4];
};

} // namespace wisync::sim

#endif // WISYNC_SIM_RNG_HH
