/**
 * @file
 * Process-environment switches read by the simulation substrate.
 *
 * Kept deliberately tiny: flags are re-read every time a config object
 * is built (not cached in process-wide statics), so tests can toggle
 * them between machine builds/resets within one process.
 */

#ifndef WISYNC_SIM_ENV_HH
#define WISYNC_SIM_ENV_HH

#include <cstdlib>

namespace wisync::sim {

/**
 * Default for the uncontended fast paths through the mesh, memory and
 * wireless hot loops: enabled unless WISYNC_NO_FASTPATH=1 (the kill
 * switch; the fast paths are cycle-exact by contract, so the switch
 * exists for A/B verification and as an escape hatch, not for
 * correctness). Evaluated when a MeshConfig / MemConfig /
 * WirelessConfig is constructed; the value then travels with the
 * config through Machine::reset.
 */
inline bool
fastpathDefault()
{
    const char *v = std::getenv("WISYNC_NO_FASTPATH");
    return !(v && v[0] == '1');
}

} // namespace wisync::sim

#endif // WISYNC_SIM_ENV_HH
