/**
 * @file
 * Fundamental scalar types shared by every WiSync subsystem.
 */

#ifndef WISYNC_SIM_TYPES_HH
#define WISYNC_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace wisync::sim {

/** Simulated time, measured in core clock cycles (1 GHz => 1 ns). */
using Cycle = std::uint64_t;

/** Sentinel for "never" / "no deadline". */
inline constexpr Cycle kCycleMax = std::numeric_limits<Cycle>::max();

/** Identifier of a node (core + caches + transceiver + BM) on the chip. */
using NodeId = std::uint32_t;

/** Identifier of a simulated software thread. */
using ThreadId = std::uint32_t;

/** Process (program) identifier used for BM protection tags. */
using Pid = std::uint16_t;

/** Byte address in the regular (cacheable) address space. */
using Addr = std::uint64_t;

/** Word offset inside a Broadcast Memory (64-bit entries). */
using BmAddr = std::uint32_t;

/** Invalid / unassigned node. */
inline constexpr NodeId kNoNode = ~NodeId{0};

} // namespace wisync::sim

#endif // WISYNC_SIM_TYPES_HH
