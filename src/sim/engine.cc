#include "sim/engine.hh"

#include <cassert>
#include <utility>

namespace wisync::sim {

void
Engine::schedule(Cycle when, UniqueFunction fn)
{
    assert(when >= now_ && "cannot schedule an event in the past");
    queue_.push(Event{when, nextSeq_++, std::move(fn)});
}

bool
Engine::run(Cycle limit)
{
    stopped_ = false;
    while (!queue_.empty() && !stopped_) {
        // priority_queue::top() is const; the event must be moved out
        // before execution because the callback may schedule new events.
        Event ev = std::move(const_cast<Event &>(queue_.top()));
        queue_.pop();
        if (ev.when > limit) {
            // Put the horizon back so a later run() can resume.
            queue_.push(std::move(ev));
            now_ = limit;
            return false;
        }
        now_ = ev.when;
        ++eventsExecuted_;
        ev.fn();
    }
    return queue_.empty();
}

} // namespace wisync::sim
