#include "sim/engine.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <new>
#include <utility>

namespace wisync::sim {

namespace {

/**
 * Process-wide recycler for pool chunks. glibc returns large freed
 * blocks to the OS; benchmark/test patterns that build and tear down
 * engines in a loop would then re-fault the same pages every iteration
 * (~150 minor faults per 10k-event engine, measured). Keeping a capped
 * stack of retired chunks makes engine churn allocation-free after the
 * first engine. The simulator is single-threaded by design, but the
 * cache is thread-local so concurrent engines in test harnesses stay
 * independent.
 */
class ChunkCache
{
  public:
    static constexpr std::size_t kMaxChunks = 128; // ~6 MiB cap

    ~ChunkCache()
    {
        for (std::byte *c : chunks_)
            ::operator delete(c);
    }

    std::byte *
    get(std::size_t bytes)
    {
        if (!chunks_.empty()) {
            std::byte *c = chunks_.back();
            chunks_.pop_back();
            return c;
        }
        return static_cast<std::byte *>(::operator new(bytes));
    }

    void
    put(std::byte *c)
    {
        if (chunks_.size() < kMaxChunks)
            chunks_.push_back(c);
        else
            ::operator delete(c);
    }

  private:
    std::vector<std::byte *> chunks_;
};

thread_local ChunkCache g_chunkCache;

} // namespace

std::uint32_t
Engine::NodePool::make(Cycle when, Slot &&s, std::uint32_t next)
{
    std::uint32_t i;
    if (freeHead_ != kNil) {
        i = freeHead_;
        std::memcpy(&freeHead_, at(i), sizeof(freeHead_));
    } else {
        if (top_ == chunks_.size() * kChunkEntries)
            chunks_.push_back(
                g_chunkCache.get(kChunkEntries * sizeof(Node)));
        i = top_++;
    }
    ::new (static_cast<void *>(at(i))) Node(when, std::move(s), next);
    return i;
}

Engine::NodePool::~NodePool()
{
    // Live nodes were already destroyed by ~Engine(); hand the raw
    // chunks back for the next engine.
    for (std::byte *c : chunks_)
        g_chunkCache.put(c);
}

Engine::~Engine()
{
    // Live detached roots first (their teardown may touch the ready
    // ring), then events still pending in the wheels (the ring, level
    // 0, current_ and far_ clean up via their vectors).
    destroyLiveRoots();
    clearWheel(l1_);
    clearWheel(l2_);
}

std::uint32_t
Engine::reserveRoot()
{
    std::uint32_t i;
    if (rootFree_ != kNilRoot) {
        i = rootFree_;
        rootFree_ = roots_[i].next;
    } else {
        i = static_cast<std::uint32_t>(roots_.size());
        roots_.push_back(RootSlot{});
    }
    roots_[i].handle = nullptr;
    roots_[i].next = kNilRoot;
    ++liveRoots_;
    return i;
}

void
Engine::destroyLiveRoots()
{
    // Destroying a root tears down its whole child chain (awaited Task
    // members live in frame locals). Destructors in those frames may
    // release model resources — e.g. a lock guard handing a mutex to a
    // waiter via resumeHandle(0, ...) — which only *stores* handles in
    // the ready ring; nothing is resumed here, and the caller clears
    // the tiers afterwards (reset) or destroys them (~Engine).
    for (std::size_t i = 0; i < roots_.size(); ++i) {
        if (roots_[i].handle == nullptr)
            continue;
        auto h = std::coroutine_handle<>::from_address(roots_[i].handle);
        roots_[i].handle = nullptr;
        h.destroy();
    }
    roots_.clear();
    rootFree_ = kNilRoot;
    liveRoots_ = 0;
}

void
Engine::clearWheel(Wheel &w)
{
    if (w.count != 0) {
        for (unsigned idx = w.bits.next(0); idx < 256;
             idx = w.bits.next(idx + 1)) {
            for (std::uint32_t i = w.head[idx]; i != NodePool::kNil;) {
                const std::uint32_t next = pool_.at(i)->next;
                pool_.recycle(i);
                i = next;
            }
        }
    }
    w.bits = Bitmap{};
    w.count = 0;
}

void
Engine::reset()
{
    destroyLiveRoots(); // may push unlock handoffs into ready_
    while (!ready_.empty())
        (void)ready_.pop();
    if (curBucket_ != nullptr) {
        curBucket_->clear();
        curBucket_ = nullptr;
        curIdx_ = 0;
    }
    if (l0Count_ > 0)
        for (auto &bucket : l0_)
            bucket.clear();
    l0Bits_ = Bitmap{};
    l0Count_ = 0;
    clearWheel(l1_);
    clearWheel(l2_);
    far_.clear();
    now_ = 0;
    nextSeq_ = 0;
    currentSeq_ = 0;
    eventsExecuted_ = 0;
    stopped_ = false;
    deadline_ = kCycleMax;
    deadlineHit_ = false;
    tierStats_ = TierStats{};
}

void
Engine::scheduleReserved(Cycle when, std::uint64_t seq, UniqueFunction fn)
{
    assert(when >= now_ && "cannot schedule a reserved event in the past");
    Slot s{std::move(fn), nullptr, 0};
    s.seq = seq;
    if (when > now_) {
        // A later cycle: normal placement. The level-0 bucket list may
        // now be seq-unordered; stageCurrentCycle()'s sort restores
        // global insertion order before execution.
        place(when, std::move(s), /*cascade=*/false);
        return;
    }
    // Same cycle: the slot's reserved seq is ahead of the event being
    // executed (callers materialize from inside an event that checked
    // currentSeq() < seq), so it belongs in the undrained tail of the
    // staged bucket. Ready-ring events all carry seqs assigned this
    // cycle — necessarily above any reserved-at-an-earlier-cycle seq —
    // so this situation can only arise mid-stage.
    assert(curBucket_ != nullptr && seq > currentSeq_ &&
           "same-cycle reserved event outside the staged drain");
    auto it = curBucket_->begin() +
              static_cast<std::ptrdiff_t>(curIdx_);
    while (it != curBucket_->end() && it->seq < seq)
        ++it;
    curBucket_->insert(it, std::move(s));
}

unsigned
Engine::Bitmap::next(unsigned from) const
{
    if (from >= 256)
        return 256;
    unsigned word = from >> 6;
    std::uint64_t m = w[word] & (~std::uint64_t{0} << (from & 63));
    for (;;) {
        if (m != 0)
            return (word << 6) +
                   static_cast<unsigned>(std::countr_zero(m));
        if (++word == 4)
            return 256;
        m = w[word];
    }
}

void
Engine::ReadyRing::grow()
{
    const std::size_t cap = buf_.empty() ? 64 : buf_.size() * 2;
    std::vector<Slot> next(cap);
    for (std::size_t i = 0; i < size_; ++i)
        next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    buf_ = std::move(next);
    head_ = 0;
}

void
Engine::placeCoarse(Cycle when, Slot &&s, Cycle diff, bool cascade)
{
    // Levels are windows aligned on power-of-two boundaries (not fixed
    // distances): an event lands in the finest level whose window
    // around now_ contains it, and cascades down as now_ enters its
    // block. The XOR against now_ (diff) tests window membership.
    Wheel *w = nullptr;
    unsigned idx = 0;
    if (diff < (Cycle{1} << 16)) {
        w = &l1_;
        idx = static_cast<unsigned>((when >> 8) & 255);
    } else if (diff < kWheelSpan) {
        w = &l2_;
        idx = static_cast<unsigned>((when >> 16) & 255);
    }
    if (w != nullptr) {
        const std::uint32_t i =
            pool_.make(when, std::move(s), NodePool::kNil);
        if (w->bits.test(idx)) {
            pool_.at(w->tail[idx])->next = i;
            w->tail[idx] = i;
            if (when < w->minWhen[idx])
                w->minWhen[idx] = when;
        } else {
            w->bits.set(idx);
            w->head[idx] = w->tail[idx] = i;
            w->minWhen[idx] = when;
        }
        ++w->count;
        if (!cascade)
            ++tierStats_.calendar;
        return;
    }
    far_.emplace_back(when, std::move(s));
    std::push_heap(far_.begin(), far_.end(), FarLater{});
    if (!cascade)
        ++tierStats_.heap;
}

Cycle
Engine::peekNext() const
{
    // Candidates per tier. For the coarse wheels the first occupied
    // bucket at or after now_'s own index holds the level's earliest
    // cycles (buckets cover increasing disjoint ranges and never wrap
    // within a window), so one bitmap scan plus its tracked minimum
    // suffices. now_'s own bucket can be non-empty after a run(limit)
    // parked time inside a block, hence the inclusive scan.
    Cycle best = kCycleMax;
    if (l0Count_ > 0) {
        const unsigned b =
            l0Bits_.next(static_cast<unsigned>(now_ & 255) + 1);
        if (b < 256)
            best = (now_ & ~Cycle{255}) + b;
    }
    if (l1_.count > 0) {
        const unsigned i1 =
            l1_.bits.next(static_cast<unsigned>((now_ >> 8) & 255));
        if (i1 < 256 && l1_.minWhen[i1] < best)
            best = l1_.minWhen[i1];
    }
    if (l2_.count > 0) {
        const unsigned i2 =
            l2_.bits.next(static_cast<unsigned>((now_ >> 16) & 255));
        if (i2 < 256 && l2_.minWhen[i2] < best)
            best = l2_.minWhen[i2];
    }
    if (!far_.empty() && far_.front().when < best)
        best = far_.front().when;
    return best;
}

void
Engine::cascadeWheelBucket(Wheel &w, unsigned idx)
{
    // Walk the FIFO list in insertion order so re-placed events keep
    // their relative order within each destination bucket.
    w.bits.clear(idx);
    for (std::uint32_t i = w.head[idx]; i != NodePool::kNil;) {
        Node *n = pool_.at(i);
        const std::uint32_t next = n->next;
        --w.count;
        place(n->ts.when, std::move(n->ts.slot), /*cascade=*/true);
        pool_.recycle(i);
        i = next;
    }
}

void
Engine::stageCurrentCycle()
{
    // Coarse-to-fine: pull overflow events whose 2^24 window now_ just
    // entered, then cascade the level-2 and level-1 buckets covering
    // now_. Each step may feed the next; every event due exactly at
    // now_ ends in l0_[now_ & 255].
    while (!far_.empty() && ((far_.front().when ^ now_) < kWheelSpan)) {
        std::pop_heap(far_.begin(), far_.end(), FarLater{});
        TimedSlot e = std::move(far_.back());
        far_.pop_back();
        place(e.when, std::move(e.slot), /*cascade=*/true);
    }
    if (l2_.count > 0) {
        const unsigned i2 = static_cast<unsigned>((now_ >> 16) & 255);
        if (l2_.bits.test(i2))
            cascadeWheelBucket(l2_, i2);
    }
    if (l1_.count > 0) {
        const unsigned i1 = static_cast<unsigned>((now_ >> 8) & 255);
        if (l1_.bits.test(i1))
            cascadeWheelBucket(l1_, i1);
    }

    const unsigned idx = static_cast<unsigned>(now_ & 255);
    assert(l0Bits_.test(idx) && "advanced to a cycle with no events");
    curBucket_ = &l0_[idx];
    curIdx_ = 0;
    l0Bits_.clear(idx);
    l0Count_ -= curBucket_->size();

    // Cascading can interleave provenances; restore global insertion
    // order. Almost always already sorted, so check first.
    if (curBucket_->size() > 1 &&
        !std::is_sorted(curBucket_->begin(), curBucket_->end(),
                        [](const Slot &a, const Slot &b) {
                            return a.seq < b.seq;
                        }))
        std::sort(curBucket_->begin(), curBucket_->end(),
                  [](const Slot &a, const Slot &b) {
                      return a.seq < b.seq;
                  });
}

bool
Engine::run(Cycle limit)
{
    stopped_ = false;
    for (;;) {
        // Drain the staged bucket for the current cycle, then the ring
        // (same-cycle arrivals, which were inserted later than anything
        // staged).
        if (curBucket_ != nullptr) {
            while (curIdx_ < curBucket_->size()) {
                // Move the slot out before invoking: the callback may
                // splice a same-cycle reserved event into the bucket
                // (scheduleReserved), relocating the storage.
                Slot s = std::move((*curBucket_)[curIdx_++]);
                ++eventsExecuted_;
                currentSeq_ = s.seq;
                s.invoke();
                if (stopped_)
                    return pendingEvents() == 0;
            }
            curBucket_->clear(); // keeps capacity for reuse
            curBucket_ = nullptr;
            curIdx_ = 0;
        }
        while (!ready_.empty()) {
            Slot s = ready_.pop();
            ++eventsExecuted_;
            currentSeq_ = s.seq;
            s.invoke();
            if (stopped_)
                return pendingEvents() == 0;
        }
        const Cycle next = peekNext();
        if (next == kCycleMax && pendingEvents() == 0)
            return true;
        const Cycle effective = limit < deadline_ ? limit : deadline_;
        if (next > effective) {
            // Park at the effective limit so a later run() can resume;
            // pending events stay in their tiers. Parking never
            // crosses a window boundary ahead of a pending event
            // (effective < next), so the wheel invariants hold. A park
            // forced by the deadline (not the caller's limit) is
            // flagged so the service layer can distinguish "budget
            // exhausted" from "workload's own horizon".
            if (effective == deadline_)
                deadlineHit_ = true;
            if (effective > now_)
                now_ = effective;
            return false;
        }
        now_ = next;
        stageCurrentCycle();
    }
}

} // namespace wisync::sim
