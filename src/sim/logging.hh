/**
 * @file
 * Error-reporting helpers in the gem5 spirit.
 *
 * panic()  — model invariant violated (simulator bug): abort.
 * fatal()  — unusable user configuration: exit(1).
 * warn()   — suspicious but survivable condition: stderr note.
 */

#ifndef WISYNC_SIM_LOGGING_HH
#define WISYNC_SIM_LOGGING_HH

#include <cstdio>
#include <string>
#include <utility>

namespace wisync::sim {

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, std::string msg);
[[noreturn]] void fatalImpl(const char *file, int line, std::string msg);
void warnImpl(const char *file, int line, std::string msg);

template <typename... Args>
std::string
formatMsg(const char *fmt, Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        return std::string(fmt);
    } else {
        const int n = std::snprintf(nullptr, 0, fmt,
                                    std::forward<Args>(args)...);
        std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
        if (n > 0)
            std::snprintf(out.data(), out.size() + 1, fmt,
                          std::forward<Args>(args)...);
        return out;
    }
}

} // namespace detail

} // namespace wisync::sim

#define WISYNC_PANIC(...)                                                  \
    ::wisync::sim::detail::panicImpl(                                      \
        __FILE__, __LINE__, ::wisync::sim::detail::formatMsg(__VA_ARGS__))

#define WISYNC_FATAL(...)                                                  \
    ::wisync::sim::detail::fatalImpl(                                      \
        __FILE__, __LINE__, ::wisync::sim::detail::formatMsg(__VA_ARGS__))

#define WISYNC_WARN(...)                                                   \
    ::wisync::sim::detail::warnImpl(                                       \
        __FILE__, __LINE__, ::wisync::sim::detail::formatMsg(__VA_ARGS__))

/** panic() unless the model invariant @p cond holds. */
#define WISYNC_ASSERT(cond, ...)                                           \
    do {                                                                   \
        if (!(cond))                                                       \
            WISYNC_PANIC("assertion failed: %s", #cond);                   \
    } while (0)

/** fatal() when a user-configuration error condition holds. */
#define WISYNC_FATAL_IF(cond, ...)                                         \
    do {                                                                   \
        if (cond)                                                          \
            WISYNC_FATAL(__VA_ARGS__);                                     \
    } while (0)

#endif // WISYNC_SIM_LOGGING_HH
