/**
 * @file
 * Discrete-event simulation engine.
 *
 * The engine owns the global event queue. All model components schedule
 * callbacks at absolute or relative cycle times; the engine executes
 * them in (cycle, insertion-order) order, which makes simulations fully
 * deterministic for a given seed.
 */

#ifndef WISYNC_SIM_ENGINE_HH
#define WISYNC_SIM_ENGINE_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/function.hh"
#include "sim/types.hh"

namespace wisync::sim {

/**
 * Deterministic discrete-event engine.
 *
 * Single-threaded by design: hardware concurrency is modelled by event
 * interleaving, not host threads, so no locking is required anywhere in
 * the model.
 */
class Engine
{
  public:
    Engine() = default;
    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Current simulated time in cycles. */
    Cycle now() const { return now_; }

    /**
     * Schedule a callback at an absolute cycle.
     *
     * @param when Absolute cycle; must be >= now().
     * @param fn   Callback executed when simulated time reaches @p when.
     */
    void schedule(Cycle when, UniqueFunction fn);

    /** Schedule a callback @p delta cycles from now. */
    void scheduleIn(Cycle delta, UniqueFunction fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    /**
     * Run until the event queue drains or @p limit is reached.
     *
     * @param limit Hard cycle limit (guards against livelock in tests).
     * @return true if the queue drained, false if the limit was hit.
     */
    bool run(Cycle limit = kCycleMax);

    /** Request that run() return after the current event. */
    void stop() { stopped_ = true; }

    /** Number of events executed so far (for micro-benchmarks). */
    std::uint64_t eventsExecuted() const { return eventsExecuted_; }

    /** Number of events currently pending. */
    std::size_t pendingEvents() const { return queue_.size(); }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        UniqueFunction fn;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    Cycle now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t eventsExecuted_ = 0;
    bool stopped_ = false;
};

} // namespace wisync::sim

#endif // WISYNC_SIM_ENGINE_HH
