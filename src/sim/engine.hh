/**
 * @file
 * Discrete-event simulation engine.
 *
 * The engine owns the global event queue. All model components schedule
 * callbacks at absolute or relative cycle times; the engine executes
 * them in (cycle, insertion-order) order, which makes simulations fully
 * deterministic for a given seed.
 *
 * Internally the queue is a three-tier scheduler, chosen so that the
 * common cases never pay a heap allocation or an O(log n) comparison
 * sift:
 *
 *   1. Ready ring     — events due at the current cycle (scheduleIn(0),
 *                       mutex handoffs, CondVar wakeups, arbitration
 *                       windows). A FIFO ring buffer: push/pop are O(1)
 *                       and allocation-free in steady state.
 *   2. Calendar wheel — a hierarchical timing wheel (Varghese/Lauck
 *                       style). Level 0 has one bucket per cycle over a
 *                       256-cycle block; levels 1 and 2 cover 2^16 and
 *                       2^24 cycles at coarser granularity. Insertion
 *                       is O(1); an event cascades to a finer level at
 *                       most twice in its lifetime; the next busy cycle
 *                       is found with 256-bit occupancy bitmaps. The
 *                       model's dominant delays (wireless slots, mesh
 *                       hops, cache latencies) are small constants that
 *                       go straight to level 0.
 *   3. Overflow heap  — events more than 2^24 cycles out (essentially
 *                       only watchdogs). A conventional (when, seq)
 *                       min-heap; correctness fallback, not a fast
 *                       path.
 *
 * Determinism contract: execution order is exactly (cycle, global
 * insertion order), bit-identical to a single (when, seq) min-heap.
 * Every slot carries its insertion sequence number; when a cycle's
 * events are staged for execution they are sorted by that number if
 * cascading mixed their provenance (same-cycle arrivals during
 * execution are FIFO behind them by construction, since they are
 * inserted later than anything staged). tests/test_engine_determinism.cc
 * replays randomized schedules against a reference heap scheduler to
 * lock this in.
 */

#ifndef WISYNC_SIM_ENGINE_HH
#define WISYNC_SIM_ENGINE_HH

#include <array>
#include <cassert>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/function.hh"
#include "sim/types.hh"

namespace wisync::sim {

/**
 * Deterministic discrete-event engine.
 *
 * Single-threaded by design: hardware concurrency is modelled by event
 * interleaving, not host threads, so no locking is required anywhere in
 * the model.
 */
class Engine
{
  public:
    /**
     * Level-0 wheel span: delays below this (without crossing a block
     * boundary) are one bucket lookup away. Kept public so tests can
     * exercise the level and overflow boundaries.
     */
    static constexpr Cycle kCalendarHorizon = 256;

    /** Deltas at or beyond this go to the overflow heap. */
    static constexpr Cycle kWheelSpan = Cycle{1} << 24;

    /** Per-tier event counters (see tierStats()). */
    struct TierStats
    {
        std::uint64_t ready = 0;    ///< same-cycle ring insertions
        std::uint64_t calendar = 0; ///< wheel insertions (any level)
        std::uint64_t heap = 0;     ///< overflow heap insertions
        std::uint64_t cascades = 0; ///< wheel level-to-level migrations
    };

    Engine() = default;
    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;
    ~Engine(); // destroys live root frames + pending wheel events

    /** Current simulated time in cycles. */
    Cycle now() const { return now_; }

    /**
     * Schedule a callback at an absolute cycle.
     *
     * @param when Absolute cycle; must be >= now().
     * @param fn   Callback executed when simulated time reaches @p when.
     */
    void
    schedule(Cycle when, UniqueFunction fn)
    {
        scheduleSlot(when, Slot{std::move(fn), nullptr, 0});
    }

    /** Schedule a callback @p delta cycles from now. */
    void scheduleIn(Cycle delta, UniqueFunction fn)
    {
        scheduleSlot(now_ + delta, Slot{std::move(fn), nullptr, 0});
    }

    /**
     * Fast path for coroutine wakeups: resume @p h at now() + delta.
     *
     * Equivalent to scheduleIn(delta, [h] { h.resume(); }) but
     * guaranteed to stay inside the event slot's inline buffer. This is
     * the route every awaiter in coro/primitives.hh takes.
     */
    void
    resumeHandle(Cycle delta, std::coroutine_handle<> h)
    {
        scheduleSlot(now_ + delta, Slot{UniqueFunction{}, h.address(), 0});
    }

    // ---- Reserved-sequence (deferred) events -------------------------
    //
    // A component that *may* need an event at a known future cycle can
    // claim its place in the deterministic execution order now and
    // only pay for the event if it turns out to be needed: reserveSeq()
    // consumes the next insertion-sequence number without scheduling
    // anything, and scheduleReserved() later files a callback under
    // that saved number. Execution order is exactly as if the event
    // had been scheduled eagerly at reservation time — the (cycle,
    // seq) contract is indifferent to *when* the slot was filed — so
    // optimizations like SimMutex's lazily-materialized releases are
    // bit-exact, including the order in which same-cycle events run.

    /** Claim the next insertion-sequence number without an event. */
    std::uint64_t reserveSeq() { return nextSeq_++; }

    /**
     * Insertion-sequence number of the event currently executing.
     * Meaningful only inside a callback/resume invoked by run(); used
     * to decide whether a reserved-seq event logically "already ran"
     * within the current cycle.
     */
    std::uint64_t currentSeq() const { return currentSeq_; }

    /**
     * File @p fn at absolute cycle @p when under the previously
     * reserved @p seq. @p when must be >= now(); when == now() is only
     * legal while the current cycle's staged bucket is still draining
     * and @p seq is still ahead of currentSeq() (the materialize-on-
     * demand pattern guarantees both).
     */
    void scheduleReserved(Cycle when, std::uint64_t seq,
                          UniqueFunction fn);

    /**
     * Run until the event queue drains or @p limit is reached.
     *
     * @param limit Hard cycle limit (guards against livelock in tests);
     *              must be >= now().
     * @return true if the queue drained, false if the limit was hit or
     *         stop() was called with events still pending.
     */
    bool run(Cycle limit = kCycleMax);

    /** Request that run() return after the current event. */
    void stop() { stopped_ = true; }

    // ---- Simulated-cycle deadline ------------------------------------
    //
    // A hard budget on simulated time, enforced inside run()'s park
    // decision: the effective limit of every run() call is
    // min(limit, deadline), and parking *because of the deadline* is
    // recorded in deadlineHit(). Unlike a workload's own run limit
    // (which legitimately produces a completed=false result), a
    // deadline hit means the caller imposed an external budget — the
    // service layer turns it into a typed DeadlineExceeded error at
    // exactly now() == deadline, deterministically: the park never
    // executes a single event past the budget cycle.

    /** Arm a deadline at absolute cycle @p deadline (clears any
     *  previous hit flag). kCycleMax disarms. */
    void
    setDeadline(Cycle deadline)
    {
        deadline_ = deadline;
        deadlineHit_ = false;
    }

    /** Disarm the deadline and clear the hit flag. */
    void
    clearDeadline()
    {
        deadline_ = kCycleMax;
        deadlineHit_ = false;
    }

    /** True iff the last run() parked because of the deadline (work
     *  was still pending at the budget cycle). */
    bool deadlineHit() const { return deadlineHit_; }

    /** Number of events executed so far (for micro-benchmarks). */
    std::uint64_t eventsExecuted() const { return eventsExecuted_; }

    /** Number of events currently pending across all tiers. */
    std::size_t
    pendingEvents() const
    {
        return ready_.size() +
               (curBucket_ != nullptr ? curBucket_->size() - curIdx_ : 0) +
               l0Count_ + l1_.count + l2_.count + far_.size();
    }

    /** Cumulative per-tier counters (for benchmarks). */
    const TierStats &tierStats() const { return tierStats_; }

    // ---- Detached-root registry --------------------------------------
    //
    // Every detached root coroutine (spawnDetached/spawnFn wrappers —
    // simulated threads, writebacks, tone announcements, whenAll legs)
    // registers its frame here. A root that runs to completion releases
    // its slot and self-destroys as before; reset() and ~Engine destroy
    // the frames still live, so tearing down (or reusing) an engine
    // mid-simulation cannot leak frames or the resources they own.
    // Frames parked in the event tiers as raw resume handles are
    // non-owning, so destroying the owner chain never double-frees.

    /** Reserve a registry slot (handle bound separately). */
    std::uint32_t reserveRoot();

    /** Bind the frame handle of a reserved slot. */
    void
    bindRoot(std::uint32_t slot, std::coroutine_handle<> h)
    {
        roots_[slot].handle = h.address();
    }

    /** A root ran to completion: forget it (frame self-destroys). */
    void
    releaseRoot(std::uint32_t slot)
    {
        roots_[slot].handle = nullptr;
        roots_[slot].next = rootFree_;
        rootFree_ = slot;
        --liveRoots_;
    }

    /** Destroy every live root frame (recursively tears down children). */
    void destroyLiveRoots();

    /** Registered roots that have not completed (for tests). */
    std::size_t liveRootCount() const { return liveRoots_; }

    /**
     * Return the engine to its post-construction state without
     * releasing its memory: destroys live root frames and pending
     * events, clears every tier, and zeroes time, sequence numbers and
     * counters. Pools (wheel nodes, ring/bucket capacity) are retained,
     * which is the point: a reset engine schedules allocation-free from
     * the first event. Must not be called from inside run().
     */
    void reset();

  private:
    /**
     * One scheduled event: a callable or — on the coroutine fast path —
     * a raw frame address (which skips both the type-erased dispatch
     * and the inline-buffer copy when slots move between tiers), plus
     * the insertion number.
     */
    struct Slot
    {
        UniqueFunction fn;
        void *handle = nullptr;
        std::uint64_t seq = 0;

        void
        invoke()
        {
            if (handle != nullptr)
                std::coroutine_handle<>::from_address(handle).resume();
            else
                fn();
        }
    };

    /** Wheel levels >= 1 and the overflow heap also need the cycle. */
    struct TimedSlot
    {
        Cycle when;
        Slot slot;

        TimedSlot(Cycle w, Slot &&s) : when(w), slot(std::move(s)) {}
        TimedSlot(TimedSlot &&) = default;
        TimedSlot &operator=(TimedSlot &&) = default;
    };

    /** Pool node: a timed slot on an intrusive per-bucket FIFO list. */
    struct Node
    {
        TimedSlot ts;
        std::uint32_t next;

        Node(Cycle w, Slot &&s, std::uint32_t n)
            : ts(w, std::move(s)), next(n)
        {}
    };

    /**
     * Chunked node pool for the coarse wheel levels.
     *
     * Far-future events can accumulate by the tens of thousands (the
     * schedule-then-run microbenchmark pattern); per-bucket vectors
     * would realloc while growing and hand hundreds of kilobytes back
     * to the allocator on engine destruction, which glibc returns to
     * the OS — and the page-fault churn of re-growing dominated the
     * benchmark. Fixed 512-entry chunks are recycled through a
     * process-wide cache (see engine.cc), so chunk allocation is a
     * once-per-process cost and nodes never move once constructed.
     */
    class NodePool
    {
      public:
        static constexpr std::uint32_t kNil = 0xffffffffu;
        static constexpr std::uint32_t kChunkShift = 9;
        static constexpr std::uint32_t kChunkEntries = 1u << kChunkShift;

        NodePool() = default;
        NodePool(const NodePool &) = delete;
        NodePool &operator=(const NodePool &) = delete;
        ~NodePool(); // returns chunks to the process-wide cache

        Node *
        at(std::uint32_t i)
        {
            return reinterpret_cast<Node *>(
                chunks_[i >> kChunkShift] +
                std::size_t{i & (kChunkEntries - 1)} * sizeof(Node));
        }

        /** Construct a node; never moves existing nodes. */
        std::uint32_t make(Cycle when, Slot &&s, std::uint32_t next);

        /** Destroy a node and recycle its index. */
        void
        recycle(std::uint32_t i)
        {
            Node *n = at(i);
            n->~Node();
            // The slot is raw storage again; it holds the freelist link.
            std::memcpy(static_cast<void *>(n), &freeHead_,
                        sizeof(freeHead_));
            freeHead_ = i;
        }

      private:
        std::vector<std::byte *> chunks_;
        std::uint32_t freeHead_ = kNil;
        std::uint32_t top_ = 0;
    };

    /** 256-bit occupancy bitmap with find-first-set-at-or-after. */
    struct Bitmap
    {
        std::array<std::uint64_t, 4> w{};

        void set(unsigned i) { w[i >> 6] |= std::uint64_t{1} << (i & 63); }
        void
        clear(unsigned i)
        {
            w[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
        }
        bool
        test(unsigned i) const
        {
            return (w[i >> 6] >> (i & 63)) & 1;
        }
        /** First set index >= from, or 256 if none. */
        unsigned next(unsigned from) const;
    };

    /**
     * One coarse wheel level: 256 intrusive FIFO lists of pool nodes
     * (list order is insertion order, which staging relies on), plus
     * the occupancy bitmap and per-bucket minimum cycle.
     */
    struct Wheel
    {
        std::array<std::uint32_t, 256> head;
        std::array<std::uint32_t, 256> tail;
        std::array<Cycle, 256> minWhen{};
        Bitmap bits;
        std::size_t count = 0;
    };

    /** Growable power-of-two FIFO ring of same-cycle events. */
    class ReadyRing
    {
      public:
        bool empty() const { return size_ == 0; }
        std::size_t size() const { return size_; }

        void
        push(Slot s)
        {
            if (size_ == buf_.size())
                grow();
            buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(s);
            ++size_;
        }

        Slot
        pop()
        {
            Slot s = std::move(buf_[head_]);
            head_ = (head_ + 1) & (buf_.size() - 1);
            --size_;
            return s;
        }

      private:
        void grow();

        std::vector<Slot> buf_;
        std::size_t head_ = 0;
        std::size_t size_ = 0;
    };

    /** Min-heap order by (when, seq) via std::push_heap/pop_heap. */
    struct FarLater
    {
        bool
        operator()(const TimedSlot &a, const TimedSlot &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.slot.seq > b.slot.seq;
        }
    };

    /** Classify + insert. Inline so the ring fast path costs no call. */
    void
    scheduleSlot(Cycle when, Slot s)
    {
        assert(when >= now_ && "cannot schedule an event in the past");
        s.seq = nextSeq_++;
        if (when == now_) {
            // Same-cycle: FIFO ring, behind everything staged for this
            // cycle (all of which was scheduled earlier).
            ready_.push(std::move(s));
            ++tierStats_.ready;
            return;
        }
        place(when, std::move(s), /*cascade=*/false);
    }

    /**
     * File @p s under the right tier for target cycle @p when > now.
     * The level-0 branch is inline (it is the dominant non-ring case:
     * wireless slots, mesh hops, cache latencies).
     */
    void
    place(Cycle when, Slot &&s, bool cascade)
    {
        const Cycle diff = when ^ now_;
        if (cascade)
            ++tierStats_.cascades;
        if (diff < kCalendarHorizon) {
            const unsigned idx = static_cast<unsigned>(when & 255);
            l0_[idx].push_back(std::move(s));
            l0Bits_.set(idx);
            ++l0Count_;
            if (!cascade)
                ++tierStats_.calendar;
            return;
        }
        placeCoarse(when, std::move(s), diff, cascade);
    }

    /** Slow tail of place(): levels 1, 2 and the overflow heap. */
    void placeCoarse(Cycle when, Slot &&s, Cycle diff, bool cascade);

    /** Destroy all pending events in a coarse wheel level. */
    void clearWheel(Wheel &w);

    /** Earliest pending cycle > now across all tiers (kCycleMax: none). */
    Cycle peekNext() const;

    /**
     * With now_ just advanced to the next busy cycle: cascade coarser
     * tiers into finer ones and move this cycle's events into current_.
     */
    void stageCurrentCycle();

    void cascadeWheelBucket(Wheel &w, unsigned idx);

    // Tier 1: same-cycle ring + a cursor over the level-0 bucket being
    // executed in place. Ordinary scheduling can never insert into the
    // bucket under the cursor (same-cycle events go to the ring; the
    // same index in the next block is outside the level-0 window); the
    // one exception is scheduleReserved() materializing a same-cycle
    // deferred event, which splices into the undrained tail — the
    // drain loop moves each slot out before invoking it, so the splice
    // is safe.
    ReadyRing ready_;
    std::vector<Slot> *curBucket_ = nullptr;
    std::size_t curIdx_ = 0;

    // Tier 2: hierarchical wheel. Level 0 is one bucket per cycle over
    // the 256-cycle block containing now_ (bucket index = when & 255;
    // every resident's target cycle is implied by its index). Levels 1
    // and 2 bucket by bits 8..15 and 16..23 of the target cycle and are
    // only ever populated with cycles in now_'s aligned 2^16 / 2^24
    // enclosing windows, so indices never collide across windows.
    std::array<std::vector<Slot>, 256> l0_;
    Bitmap l0Bits_;
    std::size_t l0Count_ = 0;
    Wheel l1_;
    Wheel l2_;
    NodePool pool_;

    // Tier 3: overflow min-heap for deltas >= kWheelSpan.
    std::vector<TimedSlot> far_;

    // Detached-root registry: slot-map with an intrusive free list.
    struct RootSlot
    {
        void *handle = nullptr;
        std::uint32_t next = 0xffffffffu;
    };
    static constexpr std::uint32_t kNilRoot = 0xffffffffu;
    std::vector<RootSlot> roots_;
    std::uint32_t rootFree_ = kNilRoot;
    std::size_t liveRoots_ = 0;

    Cycle now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t currentSeq_ = 0;
    std::uint64_t eventsExecuted_ = 0;
    bool stopped_ = false;
    Cycle deadline_ = kCycleMax;
    bool deadlineHit_ = false;
    TierStats tierStats_;
};

} // namespace wisync::sim

#endif // WISYNC_SIM_ENGINE_HH
