/**
 * @file
 * Lightweight statistics: named counters and latency histograms.
 *
 * Components hold plain Counter/Histogram members and register them in
 * a StatSet so harnesses can dump everything uniformly. Registration
 * is by reference; the owning component must outlive the StatSet dump.
 */

#ifndef WISYNC_SIM_STATS_HH
#define WISYNC_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "sim/types.hh"

namespace wisync::sim {

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Scalar sample accumulator (count / sum / min / max / mean).
 *
 * Used for latencies and occupancies where a full distribution is not
 * needed; Histogram adds log2 buckets on top.
 */
class Accumulator
{
  public:
    void sample(double v);
    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Accumulator plus power-of-two bucket histogram. */
class Histogram
{
  public:
    void sample(std::uint64_t v);
    void reset();

    const Accumulator &acc() const { return acc_; }
    /** Count of samples with floor(log2(v)) == bucket (v=0 -> bucket 0). */
    std::uint64_t bucket(unsigned b) const;
    unsigned numBuckets() const { return 64; }

  private:
    Accumulator acc_;
    std::uint64_t buckets_[64] = {};
};

/** Registry of named stats for uniform dumping. */
class StatSet
{
  public:
    void addCounter(std::string name, const Counter &c);
    void addAccumulator(std::string name, const Accumulator &a);

    /** Dump "name value" lines, sorted by name. */
    void dump(std::ostream &os) const;

    /** Look up a registered counter's value (0 if missing). */
    std::uint64_t counterValue(const std::string &name) const;

  private:
    std::map<std::string, const Counter *> counters_;
    std::map<std::string, const Accumulator *> accs_;
};

} // namespace wisync::sim

#endif // WISYNC_SIM_STATS_HH
