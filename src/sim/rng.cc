#include "sim/rng.hh"

namespace wisync::sim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    return mix64(x += 0x9E3779B97F4A7C15ull);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    reseed(seed);
}

void
Rng::reseed(std::uint64_t seed)
{
    // splitmix64 guarantees a non-degenerate state even for seed == 0.
    for (auto &word : s_)
        word = splitmix64(seed);
}

Rng
Rng::fork()
{
    return Rng(next());
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::uniform()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

} // namespace wisync::sim
