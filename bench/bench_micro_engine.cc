/**
 * @file
 * Google-benchmark microbenchmarks of the simulation substrate: event
 * queue throughput, coroutine task chains, wireless arbitration, mesh
 * transfers and coherent accesses. These bound how long the figure
 * benches take, and catch performance regressions in the kernel.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "coro/frame_pool.hh"
#include "coro/primitives.hh"
#include "core/machine.hh"
#include "mem/mem_system.hh"
#include "noc/mesh.hh"
#include "sim/engine.hh"
#include "wireless/data_channel.hh"
#include "wireless/mac/brs_mac.hh"

// ---- Heap-allocation counter ------------------------------------------
//
// The fast-path benches assert "zero heap allocations on the uncontended
// path" with a counter, not by eyeball: the global operator new family
// is replaced with counting wrappers, and each bench samples the count
// strictly around engine.run() so harness bookkeeping stays outside the
// measured window.

static std::atomic<std::uint64_t> g_heapAllocs{0};

static void *
countedAlloc(std::size_t bytes, std::size_t align)
{
    g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    if (align <= alignof(std::max_align_t))
        p = std::malloc(bytes);
    else if (posix_memalign(&p, align, bytes) != 0)
        p = nullptr;
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new(std::size_t bytes)
{
    return countedAlloc(bytes, alignof(std::max_align_t));
}

void *
operator new[](std::size_t bytes)
{
    return countedAlloc(bytes, alignof(std::max_align_t));
}

void *
operator new(std::size_t bytes, std::align_val_t align)
{
    return countedAlloc(bytes, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t bytes, std::align_val_t align)
{
    return countedAlloc(bytes, static_cast<std::size_t>(align));
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

using namespace wisync;

namespace {

// Benchmarks that exercise the engine directly attach the scheduler's
// per-tier insertion counters (from one iteration's engine) next to
// throughput: tier_ready = same-cycle ring, tier_calendar = timing
// wheel levels, tier_heap = overflow heap, tier_cascades = wheel level
// migrations.
void
attachTierCounters(benchmark::State &state,
                   const sim::Engine::TierStats &tiers)
{
    state.counters["tier_ready"] = static_cast<double>(tiers.ready);
    state.counters["tier_calendar"] = static_cast<double>(tiers.calendar);
    state.counters["tier_heap"] = static_cast<double>(tiers.heap);
    state.counters["tier_cascades"] = static_cast<double>(tiers.cascades);
}

void
BM_EngineScheduleRun(benchmark::State &state)
{
    sim::Engine::TierStats tiers;
    for (auto _ : state) {
        sim::Engine eng;
        for (int i = 0; i < 10000; ++i)
            eng.schedule(static_cast<sim::Cycle>(i), [] {});
        eng.run();
        benchmark::DoNotOptimize(eng.now());
        tiers = eng.tierStats();
    }
    state.SetItemsProcessed(state.iterations() * 10000);
    attachTierCounters(state, tiers);
}
BENCHMARK(BM_EngineScheduleRun);

void
BM_EngineScheduleRunNearFuture(benchmark::State &state)
{
    // Deltas under the level-0 block: the dominant pattern in the
    // actual models (wireless slots, mesh hops, cache latencies).
    sim::Engine::TierStats tiers;
    for (auto _ : state) {
        sim::Engine eng;
        static int left;
        left = 10000;
        struct Step
        {
            sim::Engine *eng;
            void
            operator()() const
            {
                if (--left > 0)
                    eng->scheduleIn(1 + (left & 63), Step{eng});
            }
        };
        eng.schedule(0, Step{&eng});
        eng.run();
        benchmark::DoNotOptimize(eng.now());
        tiers = eng.tierStats();
    }
    state.SetItemsProcessed(state.iterations() * 10000);
    attachTierCounters(state, tiers);
}
BENCHMARK(BM_EngineScheduleRunNearFuture);

coro::Task<void>
yieldLoop(sim::Engine &eng, int count)
{
    for (int i = 0; i < count; ++i)
        co_await coro::yield(eng);
}

void
BM_CoroutineResumeZeroDelay(benchmark::State &state)
{
    // The dominant kernel pattern: a suspended coroutine rescheduled at
    // the current cycle (mutex handoff, CondVar wakeup, arbitration).
    sim::Engine::TierStats tiers;
    for (auto _ : state) {
        sim::Engine eng;
        coro::spawnDetached(eng, yieldLoop(eng, 10000));
        eng.run();
        benchmark::DoNotOptimize(eng.now());
        tiers = eng.tierStats();
    }
    state.SetItemsProcessed(state.iterations() * 10000);
    attachTierCounters(state, tiers);
}
BENCHMARK(BM_CoroutineResumeZeroDelay);

coro::Task<void>
chain(sim::Engine &eng, int depth)
{
    if (depth == 0)
        co_return;
    co_await coro::delay(eng, 1);
    co_await chain(eng, depth - 1);
}

void
BM_CoroutineChain(benchmark::State &state)
{
    const auto before = coro::framePool().stats();
    for (auto _ : state) {
        sim::Engine eng;
        coro::spawnDetached(eng, chain(eng, 1000));
        eng.run();
        benchmark::DoNotOptimize(eng.now());
    }
    const auto after = coro::framePool().stats();
    state.SetItemsProcessed(state.iterations() * 1000);
    // Fraction of frame allocations served from the pool's free lists
    // (steady state should be ~1; a drop means the pool regressed).
    const double allocs =
        static_cast<double>(after.pooledAllocs - before.pooledAllocs);
    state.counters["pool_reuse_fraction"] =
        allocs == 0.0
            ? 0.0
            : static_cast<double>(after.freelistReuses -
                                  before.freelistReuses) /
                  allocs;
    state.counters["pool_fallback_allocs"] = static_cast<double>(
        after.fallbackAllocs - before.fallbackAllocs);
}
BENCHMARK(BM_CoroutineChain);

coro::Task<void>
sendMany(wireless::Mac &mac, int count)
{
    for (int i = 0; i < count; ++i)
        co_await mac.send(false, [] {});
}

void
BM_WirelessUncontended(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Engine eng;
        wireless::DataChannel ch(eng, wireless::WirelessConfig{});
        wireless::BrsMac brs(eng, ch, 1);
        wireless::Mac mac(eng, ch, brs, 0, sim::Rng(1));
        coro::spawnDetached(eng, sendMany(mac, 1000));
        eng.run();
        benchmark::DoNotOptimize(ch.stats().messages.value());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_WirelessUncontended);

coro::Task<void>
meshMany(noc::Mesh &mesh, int count)
{
    for (int i = 0; i < count; ++i)
        co_await mesh.send(0, 63, 576);
}

void
BM_MeshCornerToCorner(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Engine eng;
        noc::MeshConfig cfg;
        cfg.numNodes = 64;
        noc::Mesh mesh(eng, cfg);
        coro::spawnDetached(eng, meshMany(mesh, 500));
        eng.run();
        benchmark::DoNotOptimize(mesh.stats().messages.value());
    }
    state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_MeshCornerToCorner);

/**
 * A/B pair for the uncontended mesh fast path: the same 14-hop
 * corner-to-corner stream on one persistent (reset-reused) engine+mesh,
 * once through the frameless reservation chain and once through the
 * wormhole coroutine (cfg.fastpath = false — exactly the
 * WISYNC_NO_FASTPATH path). Same process, same machine: the ratio is
 * the gated speedup, heap allocations inside run() are counted (the
 * fast leg must be exactly zero in steady state), and the hit fraction
 * proves the stream really took the fast route.
 */
template <bool kFastpath>
void
meshUncontendedBody(benchmark::State &state)
{
    // Leaked on purpose: a static Engine would be destroyed after the
    // thread-local scheduler chunk cache it returns its pool chunks
    // to. Persistent bench fixtures therefore never run destructors.
    static sim::Engine &eng = *new sim::Engine;
    noc::MeshConfig cfg;
    cfg.numNodes = 64;
    cfg.fastpath = kFastpath;
    static noc::Mesh &mesh = *new noc::Mesh(eng, cfg);

    auto point = [&] {
        eng.reset();
        mesh.reset(cfg);
        coro::spawnDetached(eng, meshMany(mesh, 500));
    };
    point();
    eng.run(); // warm-up: pools, buckets, ring capacity

    std::uint64_t allocs = 0;
    std::uint64_t hits = 0;
    std::uint64_t fallbacks = 0;
    for (auto _ : state) {
        point();
        const std::uint64_t before =
            g_heapAllocs.load(std::memory_order_relaxed);
        eng.run();
        allocs += g_heapAllocs.load(std::memory_order_relaxed) - before;
        hits = mesh.stats().fastpathHits.value();
        fallbacks = mesh.stats().fastpathFallbacks.value();
        benchmark::DoNotOptimize(eng.now());
    }
    state.SetItemsProcessed(state.iterations() * 500);
    state.counters["heap_allocs"] = static_cast<double>(allocs);
    const double attempts = static_cast<double>(hits + fallbacks);
    state.counters["fastpath_hit_fraction"] =
        attempts > 0 ? static_cast<double>(hits) / attempts : 0.0;
}

void
BM_MeshUncontendedFastPath(benchmark::State &state)
{
    meshUncontendedBody<true>(state);
}
BENCHMARK(BM_MeshUncontendedFastPath);

void
BM_MeshUncontendedFallback(benchmark::State &state)
{
    meshUncontendedBody<false>(state);
}
BENCHMARK(BM_MeshUncontendedFallback);

template <bool kFastpath>
void
coherentPingPongBody(benchmark::State &state)
{
    // Two cores alternately writing one line: the worst-case coherence
    // pattern driving the Baseline synchronization results, on one
    // persistent reset-reused machine so the per-message simulation
    // cost is what gets timed. The NoFastpath twin is the same-process
    // denominator for the fast-path ratio (misses dominate, so the win
    // here comes from the frameless mesh chain under the coherence
    // legs). Leaked fixture: see meshUncontendedBody.
    auto cfg = core::MachineConfig::make(core::ConfigKind::Baseline, 16);
    cfg.setFastpath(kFastpath);
    static core::Machine &m = *new core::Machine(cfg);
    auto point = [&] {
        m.reset();
        const sim::Addr addr = m.allocMem(64, 64);
        for (int t = 0; t < 2; ++t) {
            m.spawnThread(static_cast<sim::NodeId>(t),
                          [addr](core::ThreadCtx &ctx) -> coro::Task<void> {
                              for (int i = 0; i < 200; ++i)
                                  co_await ctx.fetchAdd(addr, 1);
                          });
        }
    };
    point();
    m.run(); // warm-up
    for (auto _ : state) {
        point();
        m.run();
        benchmark::DoNotOptimize(m.engine().now());
    }
    state.SetItemsProcessed(state.iterations() * 400);
}

void
BM_CoherentPingPong(benchmark::State &state)
{
    coherentPingPongBody<true>(state);
}
BENCHMARK(BM_CoherentPingPong);

void
BM_CoherentPingPongNoFastpath(benchmark::State &state)
{
    coherentPingPongBody<false>(state);
}
BENCHMARK(BM_CoherentPingPongNoFastpath);

coro::Task<void>
touchPoint(core::ThreadCtx &ctx)
{
    // A minimal but representative sweep-point body: a coherent RMW
    // and a BM broadcast, so reset correctness (caches, directory, BM,
    // channel) is exercised, not just construction.
    co_await ctx.fetchAdd(0x1000'0000, 1);
    co_await ctx.bmStore(0, 1);
}

void
runSweepPoint(core::Machine &m)
{
    m.bm()->storeArray().setTag(0, 1);
    m.spawnThread(0, [](core::ThreadCtx &ctx) { return touchPoint(ctx); });
    m.run();
}

void
BM_MachineBuildFresh(benchmark::State &state)
{
    // A/B pair with BM_MachineResetReuse: one sweep point per
    // iteration on a freshly constructed machine. The ratio between
    // the two is the regression gate for Machine::reset (same-runner,
    // same-process, so absolute noise cancels). 64 cores = the
    // figure benches' dominant shape.
    const auto cfg =
        core::MachineConfig::make(core::ConfigKind::WiSync, 64);
    for (auto _ : state) {
        core::Machine m(cfg);
        runSweepPoint(m);
        benchmark::DoNotOptimize(m.engine().now());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MachineBuildFresh);

void
BM_MachineResetReuse(benchmark::State &state)
{
    const auto cfg =
        core::MachineConfig::make(core::ConfigKind::WiSync, 64);
    core::Machine m(cfg);
    for (auto _ : state) {
        m.reset();
        runSweepPoint(m);
        benchmark::DoNotOptimize(m.engine().now());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MachineResetReuse);

void
BM_FramePoolChurn(benchmark::State &state)
{
    // A/B pair with BM_HeapChurn: the frame pool's alloc/free cycle on
    // a realistic size mix versus the system allocator's.
    static constexpr std::size_t kSizes[] = {96, 160, 224, 320, 480};
    coro::FramePool pool;
    void *live[64] = {};
    std::size_t n = 0;
    for (auto _ : state) {
        if (n == 64) {
            while (n > 0)
                pool.deallocate(live[--n]);
        }
        live[n] = pool.allocate(kSizes[n % std::size(kSizes)]);
        benchmark::DoNotOptimize(live[n]);
        ++n;
    }
    while (n > 0)
        pool.deallocate(live[--n]);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FramePoolChurn);

void
BM_HeapChurn(benchmark::State &state)
{
    static constexpr std::size_t kSizes[] = {96, 160, 224, 320, 480};
    void *live[64] = {};
    std::size_t n = 0;
    for (auto _ : state) {
        if (n == 64) {
            while (n > 0)
                ::operator delete(live[--n]);
        }
        live[n] = ::operator new(kSizes[n % std::size(kSizes)]);
        benchmark::DoNotOptimize(live[n]);
        ++n;
    }
    while (n > 0)
        ::operator delete(live[--n]);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeapChurn);

template <bool kFastpath>
void
bmBroadcastStoreBody(benchmark::State &state)
{
    // The per-broadcast cost in isolation: one persistent reset-reused
    // machine, 500 uncontended single-sender broadcasts per iteration.
    // With the fast path on, every send must take the frameless Mac
    // route and run() must never touch the allocator (counted, and
    // gated by check_bench.py). Leaked fixture: see meshUncontendedBody.
    auto cfg = core::MachineConfig::make(core::ConfigKind::WiSync, 64);
    cfg.setFastpath(kFastpath);
    static core::Machine &m = *new core::Machine(cfg);
    auto point = [&] {
        m.reset();
        m.bm()->storeArray().setTag(0, 1);
        m.spawnThread(0, [](core::ThreadCtx &ctx) -> coro::Task<void> {
            for (int i = 0; i < 500; ++i)
                co_await ctx.bmStore(0, static_cast<std::uint64_t>(i));
        });
    };
    point();
    m.run(); // warm-up
    std::uint64_t allocs = 0;
    std::uint64_t hits = 0;
    std::uint64_t fallbacks = 0;
    for (auto _ : state) {
        point();
        const std::uint64_t before =
            g_heapAllocs.load(std::memory_order_relaxed);
        m.run();
        allocs += g_heapAllocs.load(std::memory_order_relaxed) - before;
        hits = m.bm()->dataChannel().stats().fastpathHits.value();
        fallbacks =
            m.bm()->dataChannel().stats().fastpathFallbacks.value();
        benchmark::DoNotOptimize(m.engine().now());
    }
    state.SetItemsProcessed(state.iterations() * 500);
    state.counters["heap_allocs"] = static_cast<double>(allocs);
    const double attempts = static_cast<double>(hits + fallbacks);
    state.counters["fastpath_hit_fraction"] =
        attempts > 0 ? static_cast<double>(hits) / attempts : 0.0;
}

void
BM_BmBroadcastStore(benchmark::State &state)
{
    bmBroadcastStoreBody<true>(state);
}
BENCHMARK(BM_BmBroadcastStore);

void
BM_BmBroadcastStoreNoFastpath(benchmark::State &state)
{
    bmBroadcastStoreBody<false>(state);
}
BENCHMARK(BM_BmBroadcastStoreNoFastpath);

} // namespace

BENCHMARK_MAIN();
