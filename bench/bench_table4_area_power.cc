/**
 * @file
 * Regenerates Table 4: area and power of the WiSync transceiver plus
 * two antennas (T+2A) at 22 nm versus a Xeon Haswell core and an Atom
 * Silvermont core, from the RF scaling model (§2, §7.1).
 */

#include <iostream>

#include "harness/report.hh"
#include "wireless/rf_model.hh"

using namespace wisync;

int
main()
{
    using wireless::RfScalingModel;

    const auto ref = RfScalingModel::yu65Reference();
    const auto scaled = RfScalingModel::scale(ref, 22);
    const auto tone = RfScalingModel::toneExtension22();
    const auto t2a = RfScalingModel::wisyncTransceiver22();

    harness::TextTable steps("RF scaling steps (Yu et al. 65nm -> 22nm)");
    steps.header({"Component", "Tech", "Area mm2", "Power mW",
                  "BW Gb/s"});
    steps.row({"Transceiver+antenna [51]", "65nm",
               harness::fmt(ref.areaMm2), harness::fmt(ref.powerMw, 1),
               harness::fmt(ref.bandwidthGbps, 0)});
    steps.row({"Transceiver+antenna scaled", "22nm",
               harness::fmt(scaled.areaMm2), harness::fmt(scaled.powerMw, 1),
               harness::fmt(scaled.bandwidthGbps, 0)});
    steps.row({"Tone extension + 2nd antenna", "22nm",
               harness::fmt(tone.areaMm2), harness::fmt(tone.powerMw, 1),
               "-"});
    steps.row({"Total T+2A", "22nm", harness::fmt(t2a.areaMm2),
               harness::fmt(t2a.powerMw, 1), "-"});
    steps.print(std::cout);

    harness::TextTable t4(
        "Table 4: T+2A vs 22nm cores (paper: 0.7/0.4 and 5.6/1.8 %)");
    t4.header({"Core", "Core area mm2", "Core TDP W", "(T+2A)/core area %",
               "(T+2A)/core TDP %"});
    for (const auto &row : RfScalingModel::table4()) {
        const auto cores = RfScalingModel::referenceCores();
        for (const auto &core : cores) {
            if (core.name != row.name)
                continue;
            t4.row({row.name, harness::fmt(core.areaMm2, 1),
                    harness::fmt(core.powerW, 0),
                    harness::fmt(row.areaPct, 1),
                    harness::fmt(row.powerPct, 1)});
        }
    }
    t4.print(std::cout);
    return 0;
}
