/**
 * @file
 * Regenerates Table 1 (architecture parameters) and Table 2 (the four
 * configurations) from the code's configuration structs, so the
 * printed parameters are exactly what every experiment runs with.
 */

#include <iostream>

#include "core/machine_config.hh"
#include "harness/report.hh"

using namespace wisync;

int
main()
{
    const auto cfg =
        core::MachineConfig::make(core::ConfigKind::WiSync, 64);

    harness::TextTable t1("Table 1: Architecture modeled (RT = round trip)");
    t1.header({"Parameter", "Value"});
    t1.row({"Cores", "16-256 (default 64), 2-issue, 1 GHz"});
    t1.row({"L1 cache",
            std::to_string(cfg.mem.l1SizeBytes / 1024) + "KB, " +
                std::to_string(cfg.mem.l1Assoc) + "-way, " +
                std::to_string(cfg.mem.l1RtCycles) + "-cycle RT, 64B lines"});
    t1.row({"L2 cache", "shared, per-core " +
                            std::to_string(cfg.mem.l2BankSizeBytes / 1024) +
                            "KB banks"});
    t1.row({"L2 bank", std::to_string(cfg.mem.l2Assoc) + "-way, " +
                           std::to_string(cfg.mem.l2RtCycles) +
                           "-cycle RT (local)"});
    t1.row({"Coherence", "MOESI directory based"});
    t1.row({"On-chip network",
            "2D mesh, " + std::to_string(cfg.mesh.hopCycles) +
                " cycles/hop, " + std::to_string(cfg.mesh.linkBits) +
                "-bit links"});
    t1.row({"Off-chip memory",
            std::to_string(cfg.mem.numMemCtrls) + " mem controllers, " +
                std::to_string(cfg.mem.dramRtCycles) + "-cycle RT"});
    t1.row({"Per-core BM", std::to_string(cfg.bm.bmBytes / 1024) +
                               "KB, " +
                               std::to_string(cfg.bm.bmRtCycles) +
                               "-cycle RT, 64-bit entries"});
    t1.row({"Tone channel", "1 Gb/s, 1-cycle transfer"});
    t1.row({"Data channel",
            "19 Gb/s, " + std::to_string(cfg.wireless.dataCycles) +
                "-cycle transfer, collision detect cycle " +
                std::to_string(cfg.wireless.collisionCycles)});
    t1.row({"Collision handling", "exponential backoff (max exp " +
                                      std::to_string(
                                          cfg.wireless.maxBackoffExp) +
                                      ")"});
    t1.print(std::cout);

    harness::TextTable t2("Table 2: Architecture configurations compared");
    t2.header({"Config", "BM?", "Broadcast HW", "Locks", "Barriers"});
    t2.row({"Baseline", "No", "No", "CAS", "Centralized"});
    t2.row({"Baseline+", "No", "Virtual Tree", "MCS", "Tournament"});
    t2.row({"WiSyncNoT", "Yes", "Wireless (Data)", "Wireless",
            "Wireless"});
    t2.row({"WiSync", "Yes", "Wireless (Data+Tone)", "Wireless",
            "Wireless"});
    t2.print(std::cout);
    return 0;
}
