/**
 * @file
 * Sweep-service throughput: cold vs warm batches on a duplicate-heavy
 * grid.
 *
 * The service's value proposition is that determinism makes results
 * reusable: a batch full of repeated points (parameter sweeps from
 * many users overlap heavily) should cost one simulation per *unique*
 * point, and a repeated batch should cost no simulation at all. This
 * bench measures exactly that on a duplicate-heavy TightLoop/CAS
 * grid:
 *
 *  - service_identity: the cold service run (deduped, cached, N
 *    worker threads) and a 2-way ShardPlanner split of the same
 *    request merge bit-identically to a serial, cache-disabled run —
 *    the subsystem's correctness bar, verified in-process;
 *  - cache_hits vs duplicates: every injected duplicate must be
 *    answered by the result cache (hits >= duplicates);
 *  - warm_speedup: the same batch re-run against the warm cache must
 *    be at least 2x faster than the cold run (it simulates nothing —
 *    in practice the ratio is orders of magnitude);
 *  - warm_from_disk_identical: the warm cache spilled through
 *    CacheStore and reloaded into a fresh service must answer the
 *    whole batch without simulating, bit-identical to the reference;
 *  - salvaged_prefix_hits: the same file truncated mid-record must
 *    still salvage its valid prefix, and every salvaged record must
 *    answer its point warm (>= 1 unique point served from the
 *    damaged file).
 *
 * With --json the bench emits only the machine-readable record (for
 * bench/run_bench.sh --sweep, gated by bench/check_bench.py as
 * "service" in BENCH_sweep.json); by default it prints a small table.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "harness/parallel_sweep.hh"
#include "service/cache_store.hh"
#include "service/config_codec.hh"
#include "service/fault.hh"
#include "service/shard_planner.hh"
#include "service/sweep_service.hh"
#include "workloads/kernel_result.hh"

using namespace wisync;

namespace {

/**
 * 6 unique points (kind x MAC x workload), each repeated 4x: 24
 * points, 18 duplicates — the overlap profile the cache exists for.
 */
service::SweepRequest
duplicateHeavyGrid()
{
    const std::string request_json = R"({"points": [
        {"config": {"kind": "Baseline", "cores": 16},
         "workload": {"kind": "tightloop", "iterations": 12}},
        {"config": {"kind": "WiSync", "cores": 16},
         "workload": {"kind": "tightloop", "iterations": 12}},
        {"config": {"kind": "WiSync", "cores": 16,
                    "wireless": {"mac": "Token"}},
         "workload": {"kind": "tightloop", "iterations": 12}},
        {"config": {"kind": "WiSyncNoT", "cores": 16},
         "workload": {"kind": "tightloop", "iterations": 12}},
        {"config": {"kind": "WiSync", "cores": 16},
         "workload": {"kind": "cas", "kernel": "lifo",
                      "duration": 20000}},
        {"config": {"kind": "WiSync", "cores": 16},
         "workload": {"kind": "cas", "kernel": "add",
                      "duration": 20000}}
    ]})";
    service::SweepRequest unique =
        service::ConfigCodec::parseRequest(request_json);
    service::SweepRequest grid;
    for (int rep = 0; rep < 4; ++rep)
        for (const auto &p : unique.points)
            grid.points.push_back(p);
    return grid;
}

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

} // namespace

int
main(int argc, char **argv)
{
    const bool json_only =
        argc > 1 && std::strcmp(argv[1], "--json") == 0;

    const auto request = duplicateHeavyGrid();
    const std::size_t n = request.points.size();
    const std::size_t unique = 6;
    const std::size_t duplicates = n - unique;
    const unsigned threads = harness::ParallelSweep::threads();

    // Reference: serial, cache disabled — the identity yardstick.
    service::SweepService reference(0);
    const auto expect = reference.runBatch(request, 1);

    // Cold batch: dedupe + cache through N workers.
    service::SweepService svc(256);
    const auto t0 = std::chrono::steady_clock::now();
    const auto cold = svc.runBatch(request, threads);
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t cold_hits = svc.lastBatch().cacheHits;
    const std::size_t cold_simulated = svc.lastBatch().simulated;

    // Warm batch: the same request again — zero simulations expected.
    const auto t2 = std::chrono::steady_clock::now();
    const auto warm = svc.runBatch(request, threads);
    const auto t3 = std::chrono::steady_clock::now();
    const std::size_t warm_simulated = svc.lastBatch().simulated;

    // 2-way shard split on cold per-shard services, merged by index.
    std::vector<service::ServiceOutcome> merged(n);
    for (unsigned s = 0; s < 2; ++s) {
        service::SweepService shard_svc(256);
        const auto idx = service::ShardPlanner::shardIndices(n, s, 2);
        auto part = shard_svc.runBatch(
            service::ShardPlanner::shardRequest(request, s, 2),
            threads);
        service::ShardPlanner::mergeByIndex(merged, idx,
                                            std::move(part));
    }

    bool identical = true;
    for (std::size_t i = 0; i < n; ++i) {
        identical = identical && cold[i].ok && warm[i].ok &&
                    merged[i].ok &&
                    workloads::bitIdentical(expect[i].result,
                                            cold[i].result) &&
                    workloads::bitIdentical(expect[i].result,
                                            warm[i].result) &&
                    workloads::bitIdentical(expect[i].result,
                                            merged[i].result);
    }

    // Persistence: spill the warm cache through CacheStore, warm a
    // fresh service from the file, and re-answer the whole batch
    // without simulating; then truncate the file mid-record and show
    // the salvaged prefix still serves its points.
    const std::string store_path =
        "/tmp/wisync_bench_service_" +
        std::to_string(static_cast<long long>(::getpid())) + ".bin";
    bool warm_from_disk_identical = false;
    std::size_t salvaged_loaded = 0;
    std::size_t salvaged_prefix_hits = 0;
    {
        std::string error;
        if (service::CacheStore::save(svc.cache(), store_path,
                                      &error)) {
            service::SweepService disk_svc(256);
            const auto stats = service::CacheStore::load(
                disk_svc.cache(), store_path);
            const auto from_disk = disk_svc.runBatch(request, threads);
            warm_from_disk_identical =
                stats.loaded == unique && stats.discarded == 0 &&
                disk_svc.lastBatch().simulated == 0;
            for (std::size_t i = 0; i < n; ++i)
                warm_from_disk_identical =
                    warm_from_disk_identical && from_disk[i].ok &&
                    workloads::bitIdentical(expect[i].result,
                                            from_disk[i].result);

            // Cut the last record's tail: the prefix must salvage and
            // every salvaged record must answer its point warm.
            std::uint64_t file_size = 0;
            {
                std::ifstream f(store_path,
                                std::ios::binary | std::ios::ate);
                file_size = static_cast<std::uint64_t>(f.tellg());
            }
            service::FaultPlan::truncateFile(store_path,
                                             file_size - 10);
            service::SweepService salvage_svc(256);
            const auto salvage = service::CacheStore::load(
                salvage_svc.cache(), store_path);
            salvaged_loaded = salvage.loaded;
            const auto salvaged =
                salvage_svc.runBatch(request, threads);
            salvaged_prefix_hits =
                unique - salvage_svc.lastBatch().simulated;
            bool salvaged_identical =
                salvaged_prefix_hits == salvage.loaded;
            for (std::size_t i = 0; i < n; ++i)
                salvaged_identical =
                    salvaged_identical && salvaged[i].ok &&
                    workloads::bitIdentical(expect[i].result,
                                            salvaged[i].result);
            if (!salvaged_identical)
                salvaged_prefix_hits = 0; // fail the gate loudly
        } else {
            std::fprintf(stderr, "cache spill failed: %s\n",
                         error.c_str());
        }
        std::remove(store_path.c_str());
    }

    const double cold_s = seconds(t0, t1);
    // The warm batch routinely finishes below timer resolution; the
    // 1 us floor keeps the ratio finite without flattering it.
    const double warm_s = std::max(seconds(t2, t3), 1e-6);
    const double speedup = cold_s / warm_s;

    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "{\"points\": %zu, \"unique\": %zu, \"duplicates\": %zu, "
        "\"threads\": %u, \"service_identity\": %s, "
        "\"cold_simulated\": %zu, \"warm_simulated\": %zu, "
        "\"cache_hits\": %llu, \"cold_seconds\": %.4f, "
        "\"warm_seconds\": %.6f, \"warm_speedup\": %.1f, "
        "\"warm_from_disk_identical\": %s, "
        "\"salvaged_loaded\": %zu, \"salvaged_prefix_hits\": %zu}",
        n, unique, duplicates, threads, identical ? "true" : "false",
        cold_simulated, warm_simulated,
        static_cast<unsigned long long>(cold_hits), cold_s, warm_s,
        speedup, warm_from_disk_identical ? "true" : "false",
        salvaged_loaded, salvaged_prefix_hits);

    if (json_only) {
        std::printf("%s\n", buf);
    } else {
        std::printf("sweep service, %zu-point batch (%zu unique):\n",
                    n, unique);
        std::printf("  cold: %.4f s (%zu simulated, %llu cache hits)\n",
                    cold_s, cold_simulated,
                    static_cast<unsigned long long>(cold_hits));
        std::printf("  warm: %.6f s (%zu simulated) — %.1fx\n", warm_s,
                    warm_simulated, speedup);
        std::printf("  identity (serial == cold == warm == sharded): "
                    "%s\n",
                    identical ? "yes" : "NO");
        std::printf("  disk: warm-from-file identical %s, salvage "
                    "after truncation %zu/%zu warm\n",
                    warm_from_disk_identical ? "yes" : "NO",
                    salvaged_prefix_hits, unique);
        std::printf("%s\n", buf);
    }
    // Nonzero exit on a determinism or persistence violation, like
    // bench_sweep_parallel: CI must not need to parse the table.
    return identical && warm_from_disk_identical &&
                   salvaged_prefix_hits >= 1
               ? 0
               : 1;
}
