/**
 * @file
 * Same-process A/B of the parallel sweep driver: one TightLoop figure
 * grid, timed serially (1 worker) and at the environment's worker
 * count (WISYNC_SWEEP_THREADS, default hardware concurrency), with
 * the merged results compared for equality. Emits a single JSON
 * object for bench/run_bench.sh to merge into BENCH_sweep.json;
 * bench/check_bench.py gates sweep_parallel_speedup when more than
 * one worker was actually available (the ratio is same-process and
 * wall-clock — the parallel leg's whole point is wall time).
 *
 * The serial leg runs first and both legs share one process, so
 * allocator warm-up favours the parallel leg equally on both runs.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "harness/parallel_sweep.hh"
#include "workloads/kernel_result.hh"
#include "workloads/tight_loop.hh"

using namespace wisync;

int
main()
{
    using core::ConfigKind;

    // The Fig. 7 grid at a fixed bench scale — deliberately *not*
    // scaled down by WISYNC_QUICK: the gated ratio needs a stable
    // measurement (~0.2 s serial; a quick-mode ~30 ms grid would put
    // runner noise inside the gate margin). At this scale the worst
    // single point is ~23% of serial time, so the parallel leg's
    // straggler bound (~4x) sits well above the 1.5x gate.
    const std::vector<std::uint32_t> cores = {16, 32, 64};
    workloads::TightLoopParams params;
    params.iterations = 40;

    harness::ParallelSweep sweep;
    harness::ParallelSweep sweepNoFastpath;
    for (const auto n : cores) {
        for (const auto kind :
             {ConfigKind::Baseline, ConfigKind::BaselinePlus,
              ConfigKind::WiSyncNoT, ConfigKind::WiSync}) {
            auto cfg = core::MachineConfig::make(kind, n);
            sweep.add(cfg, [params](core::Machine &m) {
                return workloads::runTightLoopOn(m, params);
            });
            cfg.setFastpath(false);
            sweepNoFastpath.add(cfg, [params](core::Machine &m) {
                return workloads::runTightLoopOn(m, params);
            });
        }
    }

    using clock = std::chrono::steady_clock;
    auto seconds = [](clock::duration d) {
        return std::chrono::duration<double>(d).count();
    };

    // Untimed warm-up pass: both timed legs run with hot allocator,
    // frame-pool and page state, so the ratio measures parallelism
    // only (a cold serial leg inflates it by the warm-up cost).
    (void)sweep.run(1);

    const auto t0 = clock::now();
    const auto serial = sweep.run(1);
    const auto t1 = clock::now();
    const unsigned threads = harness::ParallelSweep::threads();
    const auto parallel = sweep.run(threads);
    const auto t2 = clock::now();

    bool identical = serial.size() == parallel.size();
    for (std::size_t i = 0; identical && i < serial.size(); ++i)
        identical = workloads::bitIdentical(serial[i], parallel[i]);

    // Untimed third leg: the same grid with every uncontended fast
    // path disabled (the WISYNC_NO_FASTPATH configuration) must
    // produce bit-identical KernelResults — the fast paths are a
    // host-time optimization and may never move a simulated cycle.
    // bitIdentical() excludes the fastpath route counters by design.
    const auto noFastpath = sweepNoFastpath.run(1);
    bool fastpath_identical = serial.size() == noFastpath.size();
    for (std::size_t i = 0; fastpath_identical && i < serial.size(); ++i)
        fastpath_identical =
            workloads::bitIdentical(serial[i], noFastpath[i]);

    const double serial_s = seconds(t1 - t0);
    const double parallel_s = seconds(t2 - t1);
    std::printf("{\"grid\": \"tightloop\", \"points\": %zu, "
                "\"threads\": %u, \"serial_seconds\": %.3f, "
                "\"parallel_seconds\": %.3f, "
                "\"sweep_parallel_speedup\": %.2f, "
                "\"results_identical\": %s, "
                "\"fastpath_identical\": %s}\n",
                sweep.size(), threads, serial_s, parallel_s,
                parallel_s > 0 ? serial_s / parallel_s : 0.0,
                identical ? "true" : "false",
                fastpath_identical ? "true" : "false");
    return identical && fastpath_identical ? 0 : 1;
}
