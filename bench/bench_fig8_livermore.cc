/**
 * @file
 * Regenerates Figure 8: Livermore loops 2, 3 and 6 execution time
 * (cycles) on the four configurations over a vector-length sweep, at
 * 64 and 128 cores. Expected shape (paper): WiSync/WiSyncNoT are
 * several times faster than Baseline+ and ~2 orders below Baseline at
 * small vectors; Baseline+ closes the gap as vectors grow (compute
 * starts to dominate), fastest for loop 6's large bodies.
 */

#include <iostream>
#include <vector>

#include "harness/report.hh"
#include "harness/sweep.hh"
#include "workloads/livermore.hh"

using namespace wisync;

namespace {

void
sweep(harness::SweepHarness &machines, workloads::LivermoreLoop loop,
      const char *name, std::uint32_t cores,
      const std::vector<std::uint32_t> &lengths)
{
    using core::ConfigKind;
    harness::TextTable fig(std::string("Figure 8: Livermore ") + name +
                           " execution cycles, " +
                           std::to_string(cores) + " cores");
    fig.header({"VecLen", "Baseline", "Baseline+", "WiSyncNoT", "WiSync",
                "Base/WiSync"});
    for (const auto n : lengths) {
        workloads::LivermoreParams params;
        params.n = n;
        params.passes = 1;
        auto run = [&](ConfigKind kind) {
            return workloads::runLivermoreOn(
                       loop,
                       machines.acquire(
                           core::MachineConfig::make(kind, cores)),
                       params)
                .cycles;
        };
        const auto base = run(ConfigKind::Baseline);
        const auto plus = run(ConfigKind::BaselinePlus);
        const auto not_ = run(ConfigKind::WiSyncNoT);
        const auto full = run(ConfigKind::WiSync);
        fig.row({std::to_string(n), harness::fmtCycles(base),
                 harness::fmtCycles(plus), harness::fmtCycles(not_),
                 harness::fmtCycles(full),
                 harness::fmt(static_cast<double>(base) /
                                  static_cast<double>(full),
                              1) +
                     "x"});
    }
    fig.print(std::cout);
}

} // namespace

int
main()
{
    std::vector<std::uint32_t> len23, len6, corecounts;
    switch (harness::sweepMode()) {
      case harness::SweepMode::Quick:
        len23 = {16, 256};
        len6 = {16, 64};
        corecounts = {64};
        break;
      case harness::SweepMode::Default:
        len23 = {16, 64, 256, 1024, 4096, 16384};
        len6 = {16, 64, 256, 512};
        corecounts = {64, 128};
        break;
      case harness::SweepMode::Full:
        len23 = {16, 64, 256, 1024, 4096, 16384};
        len6 = {16, 32, 64, 128, 256, 512, 1024, 2048};
        corecounts = {64, 128};
        break;
    }

    harness::SweepHarness machines;
    for (const auto cores : corecounts) {
        sweep(machines, workloads::LivermoreLoop::Iccg, "loop 2 (ICCG)",
              cores, len23);
        sweep(machines, workloads::LivermoreLoop::InnerProduct,
              "loop 3 (inner product)", cores, len23);
        sweep(machines, workloads::LivermoreLoop::LinearRecurrence,
              "loop 6 (linear recurrence)", cores, len6);
    }
    return 0;
}
