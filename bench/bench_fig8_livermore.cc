/**
 * @file
 * Regenerates Figure 8: Livermore loops 2, 3 and 6 execution time
 * (cycles) on the four configurations over a vector-length sweep, at
 * 64 and 128 cores. Expected shape (paper): WiSync/WiSyncNoT are
 * several times faster than Baseline+ and ~2 orders below Baseline at
 * small vectors; Baseline+ closes the gap as vectors grow (compute
 * starts to dominate), fastest for loop 6's large bodies.
 *
 * All (core count x loop x length x kind) points form one
 * ParallelSweep grid, so every table's points run concurrently.
 */

#include <array>
#include <iostream>
#include <string>
#include <vector>

#include "harness/parallel_sweep.hh"
#include "harness/report.hh"
#include "workloads/livermore.hh"

using namespace wisync;

namespace {

using core::ConfigKind;

constexpr std::array<ConfigKind, 4> kKinds = {
    ConfigKind::Baseline, ConfigKind::BaselinePlus, ConfigKind::WiSyncNoT,
    ConfigKind::WiSync};

struct Row
{
    std::uint32_t n;
    std::array<std::size_t, 4> idx;
};

struct Table
{
    std::string title;
    std::vector<Row> rows;
};

Table
declare(harness::ParallelSweep &sweep, workloads::LivermoreLoop loop,
        const char *name, std::uint32_t cores,
        const std::vector<std::uint32_t> &lengths)
{
    Table table;
    table.title = std::string("Figure 8: Livermore ") + name +
                  " execution cycles, " + std::to_string(cores) + " cores";
    for (const auto n : lengths) {
        workloads::LivermoreParams params;
        params.n = n;
        params.passes = 1;
        Row row{n, {}};
        for (std::size_t k = 0; k < kKinds.size(); ++k) {
            row.idx[k] = sweep.add(
                core::MachineConfig::make(kKinds[k], cores),
                [loop, params](core::Machine &m) {
                    return workloads::runLivermoreOn(loop, m, params);
                });
        }
        table.rows.push_back(row);
    }
    return table;
}

void
print(const Table &table,
      const std::vector<workloads::KernelResult> &results)
{
    harness::TextTable fig(table.title);
    fig.header({"VecLen", "Baseline", "Baseline+", "WiSyncNoT", "WiSync",
                "Base/WiSync"});
    for (const auto &row : table.rows) {
        const auto base = results[row.idx[0]].cycles;
        const auto full = results[row.idx[3]].cycles;
        fig.row({std::to_string(row.n), harness::fmtCycles(base),
                 harness::fmtCycles(results[row.idx[1]].cycles),
                 harness::fmtCycles(results[row.idx[2]].cycles),
                 harness::fmtCycles(full),
                 harness::fmt(static_cast<double>(base) /
                                  static_cast<double>(full),
                              1) +
                     "x"});
    }
    fig.print(std::cout);
}

} // namespace

int
main()
{
    std::vector<std::uint32_t> len23, len6, corecounts;
    switch (harness::sweepMode()) {
      case harness::SweepMode::Quick:
        len23 = {16, 256};
        len6 = {16, 64};
        corecounts = {64};
        break;
      case harness::SweepMode::Default:
        len23 = {16, 64, 256, 1024, 4096, 16384};
        len6 = {16, 64, 256, 512};
        corecounts = {64, 128};
        break;
      case harness::SweepMode::Full:
        len23 = {16, 64, 256, 1024, 4096, 16384};
        len6 = {16, 32, 64, 128, 256, 512, 1024, 2048};
        corecounts = {64, 128};
        break;
    }

    harness::ParallelSweep sweep;
    std::vector<Table> tables;
    for (const auto cores : corecounts) {
        tables.push_back(declare(sweep, workloads::LivermoreLoop::Iccg,
                                 "loop 2 (ICCG)", cores, len23));
        tables.push_back(declare(sweep,
                                 workloads::LivermoreLoop::InnerProduct,
                                 "loop 3 (inner product)", cores, len23));
        tables.push_back(
            declare(sweep, workloads::LivermoreLoop::LinearRecurrence,
                    "loop 6 (linear recurrence)", cores, len6));
    }
    const auto results = sweep.run();
    for (const auto &table : tables)
        print(table, results);
    return 0;
}
