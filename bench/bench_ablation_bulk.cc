/**
 * @file
 * Ablation of the Bulk transfer optimisation (§4.1).
 *
 * A Bulk message moves 4 words in 15 cycles instead of 4x5: the
 * trailing words skip the collision-listen cycle and headers. This
 * bench runs the producer-consumer pattern (§4.3.4) with bulk
 * transfers versus four scalar stores and reports the achieved
 * hand-off rate, isolating the design choice's benefit.
 *
 * The two variants are the grid of a (tiny) ParallelSweep: each body
 * spawns its own threads on the prepared machine and reports cycles
 * as a KernelResult.
 */

#include <array>
#include <iostream>

#include "core/machine.hh"
#include "harness/parallel_sweep.hh"
#include "harness/report.hh"
#include "sync/wisync_sync.hh"

using namespace wisync;

namespace {

constexpr int kMsgs = 200;

coro::Task<void>
producerBulk(core::ThreadCtx &ctx, sync::ProducerConsumer *pc, int msgs)
{
    for (int i = 0; i < msgs; ++i)
        co_await pc->produce(ctx, {std::uint64_t(i), 1, 2, 3});
}

coro::Task<void>
consumerBulk(core::ThreadCtx &ctx, sync::ProducerConsumer *pc, int msgs)
{
    for (int i = 0; i < msgs; ++i)
        co_await pc->consume(ctx);
}

workloads::KernelResult
runBulk(core::Machine &m)
{
    sync::ProducerConsumer pc(m, 1);
    m.spawnThread(0, [&pc](core::ThreadCtx &ctx) {
        return producerBulk(ctx, &pc, kMsgs);
    });
    m.spawnThread(1, [&pc](core::ThreadCtx &ctx) {
        return consumerBulk(ctx, &pc, kMsgs);
    });
    workloads::KernelResult r;
    r.completed = m.run();
    r.cycles = m.engine().now();
    r.operations = kMsgs;
    workloads::captureChannelStats(r, m);
    return r;
}

/** Scalar variant: 4 single-word stores + flag. */
struct ScalarChannel
{
    sim::BmAddr data;
    sim::BmAddr flag;
};

coro::Task<void>
producerScalar(core::ThreadCtx &ctx, ScalarChannel ch, int msgs)
{
    for (int i = 0; i < msgs; ++i) {
        co_await ctx.bmSpinUntil(ch.flag,
                                 [](std::uint64_t v) { return v == 0; });
        for (std::uint32_t w = 0; w < 4; ++w)
            co_await ctx.bmStore(ch.data + w, static_cast<std::uint64_t>(i));
        co_await ctx.bmStore(ch.flag, 1);
    }
}

coro::Task<void>
consumerScalar(core::ThreadCtx &ctx, ScalarChannel ch, int msgs)
{
    for (int i = 0; i < msgs; ++i) {
        co_await ctx.bmSpinUntil(ch.flag,
                                 [](std::uint64_t v) { return v == 1; });
        co_await ctx.bmBulkLoad(ch.data);
        co_await ctx.bmStore(ch.flag, 0);
    }
}

workloads::KernelResult
runScalar(core::Machine &m)
{
    ScalarChannel ch;
    ch.data = sync::setupBmWords(m, 4, 1);
    ch.flag = sync::setupBmWords(m, 1, 1);
    m.spawnThread(0, [ch](core::ThreadCtx &ctx) {
        return producerScalar(ctx, ch, kMsgs);
    });
    m.spawnThread(1, [ch](core::ThreadCtx &ctx) {
        return consumerScalar(ctx, ch, kMsgs);
    });
    workloads::KernelResult r;
    r.completed = m.run();
    r.cycles = m.engine().now();
    r.operations = kMsgs;
    workloads::captureChannelStats(r, m);
    return r;
}

} // namespace

int
main()
{
    const auto cfg =
        core::MachineConfig::make(core::ConfigKind::WiSync, 2);
    harness::ParallelSweep sweep;
    sweep.add(cfg, runBulk);
    sweep.add(cfg, runScalar);
    const auto results = sweep.run();
    const sim::Cycle bulk_cycles = results[0].cycles;
    const sim::Cycle scalar_cycles = results[1].cycles;

    harness::TextTable tab("Ablation: Bulk vs scalar BM transfers "
                           "(producer-consumer, 4-word messages)");
    tab.header({"Variant", "Cycles", "Cycles/message"});
    tab.row({"Bulk store (15-cycle msg)", harness::fmtCycles(bulk_cycles),
             harness::fmt(static_cast<double>(bulk_cycles) / kMsgs, 1)});
    tab.row({"4x scalar stores (4x5-cycle)",
             harness::fmtCycles(scalar_cycles),
             harness::fmt(static_cast<double>(scalar_cycles) / kMsgs, 1)});
    tab.row({"Bulk advantage",
             harness::fmt(static_cast<double>(scalar_cycles) /
                              static_cast<double>(bulk_cycles)) +
                 "x",
             ""});
    tab.print(std::cout);
    return 0;
}
