/**
 * @file
 * Regenerates Figure 11: geometric-mean speedup over Baseline of
 * Baseline+, WiSyncNoT and WiSync under the Table 6 memory/network
 * variants at 64 cores. Expected shape (paper): WiSync gains grow
 * with a slower NoC and shrink with a faster one; the L2 and BM
 * latency variations barely move the needle.
 *
 * To keep the run time reasonable this uses a representative subset
 * of the suite (the sync-intensive apps plus several sync-light ones,
 * preserving the mix); the full suite is used with WISYNC_FULL=1.
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/report.hh"
#include "workloads/apps.hh"

using namespace wisync;

int
main()
{
    using core::ConfigKind;
    using core::Variant;
    const std::uint32_t cores =
        harness::sweepMode() == harness::SweepMode::Quick ? 16 : 64;

    std::vector<std::string> names;
    if (harness::sweepMode() == harness::SweepMode::Full) {
        for (const auto &app : workloads::appSuite())
            names.push_back(app.name);
    } else {
        names = {"streamcluster", "ocean-c", "raytrace", "radiosity",
                 "water-ns",      "barnes",  "fft",      "blackscholes",
                 "canneal",       "lu-c"};
    }
    const std::vector<Variant> variants = {
        Variant::Default, Variant::SlowNet, Variant::SlowNetL2,
        Variant::FastNet, Variant::SlowBmem};

    harness::TextTable fig("Figure 11: geomean speedup over Baseline "
                           "under Table 6 variants, " +
                           std::to_string(cores) + " cores");
    fig.header({"Variant", "Baseline+", "WiSyncNoT", "WiSync"});
    for (const auto v : variants) {
        std::vector<double> sp_plus, sp_not, sp_full;
        for (const auto &name : names) {
            const auto &app = workloads::appByName(name);
            const auto base =
                workloads::runApp(app, ConfigKind::Baseline, cores, v);
            const double b = static_cast<double>(base.cycles);
            sp_plus.push_back(
                b / static_cast<double>(
                        workloads::runApp(app, ConfigKind::BaselinePlus,
                                          cores, v)
                            .cycles));
            sp_not.push_back(
                b / static_cast<double>(
                        workloads::runApp(app, ConfigKind::WiSyncNoT,
                                          cores, v)
                            .cycles));
            sp_full.push_back(
                b / static_cast<double>(
                        workloads::runApp(app, ConfigKind::WiSync, cores,
                                          v)
                            .cycles));
        }
        fig.row({core::toString(v), harness::fmt(harness::geomean(sp_plus)),
                 harness::fmt(harness::geomean(sp_not)),
                 harness::fmt(harness::geomean(sp_full))});
    }
    fig.print(std::cout);
    return 0;
}
