/**
 * @file
 * Regenerates Figure 11: geometric-mean speedup over Baseline of
 * Baseline+, WiSyncNoT and WiSync under the Table 6 memory/network
 * variants at 64 cores. Expected shape (paper): WiSync gains grow
 * with a slower NoC and shrink with a faster one; the L2 and BM
 * latency variations barely move the needle.
 *
 * To keep the run time reasonable this uses a representative subset
 * of the suite (the sync-intensive apps plus several sync-light ones,
 * preserving the mix); the full suite is used with WISYNC_FULL=1.
 *
 * The (variant x app x kind) grid — the largest figure grid — runs
 * through ParallelSweep; geomeans are folded from the merged results.
 *
 * A second, appended table sweeps the lossPct axis (the lossy-channel
 * model + ack/retry reliability layer) over the sync-intensive apps:
 * geomean slowdown vs the ideal channel plus the reliability
 * telemetry. Its lossPct = 0 row must be bit-identical to the main
 * grid's Default-variant cells — the loss layer, compiled in but
 * disabled, may not move a single simulated cycle (exit 1 if it does).
 *
 * A third table sweeps the burst-length axis of the Gilbert–Elliott
 * chain at a mean loss equal to the i.i.d. 5% row: same average loss,
 * increasingly correlated arrivals. Burst-off twins (live-looking
 * chain knobs, enabled = false) must stay bit-identical to the
 * lossPct = 0 points, and the equal-mean bursty rows must diverge
 * from the i.i.d. row somewhere, or the chain is dead state.
 */

#include <array>
#include <iostream>
#include <string>
#include <vector>

#include "harness/parallel_sweep.hh"
#include "harness/report.hh"
#include "wireless/burst.hh"
#include "workloads/apps.hh"
#include "workloads/kernel_result.hh"

using namespace wisync;

int
main()
{
    using core::ConfigKind;
    using core::Variant;
    const std::uint32_t cores =
        harness::sweepMode() == harness::SweepMode::Quick ? 16 : 64;

    std::vector<std::string> names;
    if (harness::sweepMode() == harness::SweepMode::Full) {
        for (const auto &app : workloads::appSuite())
            names.push_back(app.name);
    } else {
        names = {"streamcluster", "ocean-c", "raytrace", "radiosity",
                 "water-ns",      "barnes",  "fft",      "blackscholes",
                 "canneal",       "lu-c"};
    }
    const std::vector<Variant> variants = {
        Variant::Default, Variant::SlowNet, Variant::SlowNetL2,
        Variant::FastNet, Variant::SlowBmem};

    const std::array<ConfigKind, 4> kinds = {
        ConfigKind::Baseline, ConfigKind::BaselinePlus,
        ConfigKind::WiSyncNoT, ConfigKind::WiSync};

    harness::ParallelSweep sweep;
    struct Cell
    {
        std::array<std::size_t, 4> idx;
    };
    // One Cell per (variant, app), in declaration order.
    std::vector<std::vector<Cell>> grid(variants.size());
    for (std::size_t v = 0; v < variants.size(); ++v) {
        for (const auto &name : names) {
            const auto &app = workloads::appByName(name);
            Cell cell{};
            for (std::size_t k = 0; k < kinds.size(); ++k) {
                cell.idx[k] = sweep.add(
                    core::MachineConfig::make(kinds[k], cores, variants[v]),
                    [&app](core::Machine &m) {
                        return workloads::runAppOn(app, m);
                    });
            }
            grid[v].push_back(cell);
        }
    }
    const auto results = sweep.run();

    harness::TextTable fig("Figure 11: geomean speedup over Baseline "
                           "under Table 6 variants, " +
                           std::to_string(cores) + " cores");
    fig.header({"Variant", "Baseline+", "WiSyncNoT", "WiSync"});
    for (std::size_t v = 0; v < variants.size(); ++v) {
        std::vector<double> sp_plus, sp_not, sp_full;
        for (const auto &cell : grid[v]) {
            const double b =
                static_cast<double>(results[cell.idx[0]].cycles);
            sp_plus.push_back(
                b / static_cast<double>(results[cell.idx[1]].cycles));
            sp_not.push_back(
                b / static_cast<double>(results[cell.idx[2]].cycles));
            sp_full.push_back(
                b / static_cast<double>(results[cell.idx[3]].cycles));
        }
        fig.row({core::toString(variants[v]),
                 harness::fmt(harness::geomean(sp_plus)),
                 harness::fmt(harness::geomean(sp_not)),
                 harness::fmt(harness::geomean(sp_full))});
    }
    fig.print(std::cout);

    // ---- Loss sensitivity: the lossPct axis ------------------------
    // Sync-intensive apps on the wireless kinds only (Baseline has no
    // channel to lose packets on); Default variant.
    const std::vector<double> loss_levels =
        harness::sweepMode() == harness::SweepMode::Quick
            ? std::vector<double>{0.0, 5.0}
            : std::vector<double>{0.0, 1.0, 2.0, 5.0, 10.0};
    const std::vector<std::string> loss_apps = {"streamcluster", "fft",
                                                "barnes"};
    const std::array<ConfigKind, 2> loss_kinds = {ConfigKind::WiSyncNoT,
                                                  ConfigKind::WiSync};

    harness::ParallelSweep loss_sweep;
    // idx[level][app][kind]
    std::vector<std::vector<std::array<std::size_t, 2>>> loss_grid(
        loss_levels.size());
    for (std::size_t l = 0; l < loss_levels.size(); ++l) {
        for (const auto &name : loss_apps) {
            const auto &app = workloads::appByName(name);
            std::array<std::size_t, 2> cell{};
            for (std::size_t k = 0; k < loss_kinds.size(); ++k) {
                auto cfg = core::MachineConfig::make(loss_kinds[k], cores,
                                                     Variant::Default);
                cfg.wireless.lossPct = loss_levels[l];
                cell[k] = loss_sweep.add(cfg, [&app](core::Machine &m) {
                    return workloads::runAppOn(app, m);
                });
            }
            loss_grid[l].push_back(cell);
        }
    }
    const auto loss_results = loss_sweep.run();

    // The hard invariant: lossPct = 0 with the loss layer compiled in
    // is byte-identical to the ideal channel of the main grid.
    bool loss0_identical = true;
    for (std::size_t a = 0; a < loss_apps.size(); ++a) {
        // Locate the app's Default-variant cell in the main grid.
        std::size_t main_a = 0;
        while (names[main_a] != loss_apps[a])
            ++main_a;
        const auto &main_cell = grid[0][main_a];
        loss0_identical =
            loss0_identical &&
            workloads::bitIdentical(results[main_cell.idx[2]],
                                    loss_results[loss_grid[0][a][0]]) &&
            workloads::bitIdentical(results[main_cell.idx[3]],
                                    loss_results[loss_grid[0][a][1]]);
    }

    harness::TextTable loss_fig(
        "Loss sensitivity: geomean slowdown vs ideal channel "
        "(Default variant, " +
        std::to_string(cores) + " cores)");
    loss_fig.header({"Loss%", "WiSyncNoT", "WiSync", "Drops", "Rexmit",
                     "Giveups"});
    for (std::size_t l = 0; l < loss_levels.size(); ++l) {
        std::vector<double> slow_not, slow_full;
        std::uint64_t drops = 0, rexmit = 0, giveups = 0;
        for (std::size_t a = 0; a < loss_apps.size(); ++a) {
            const auto &r0n = loss_results[loss_grid[0][a][0]];
            const auto &r0f = loss_results[loss_grid[0][a][1]];
            const auto &rn = loss_results[loss_grid[l][a][0]];
            const auto &rf = loss_results[loss_grid[l][a][1]];
            slow_not.push_back(static_cast<double>(rn.cycles) /
                               static_cast<double>(r0n.cycles));
            slow_full.push_back(static_cast<double>(rf.cycles) /
                                static_cast<double>(r0f.cycles));
            drops += rn.wirelessDrops + rf.wirelessDrops;
            rexmit += rn.macRetransmits + rf.macRetransmits;
            giveups += rn.macGiveups + rf.macGiveups;
        }
        loss_fig.row({harness::fmt(loss_levels[l], 1),
                      harness::fmt(harness::geomean(slow_not)),
                      harness::fmt(harness::geomean(slow_full)),
                      std::to_string(drops), std::to_string(rexmit),
                      std::to_string(giveups)});
    }
    loss_fig.print(std::cout);
    std::cout << (loss0_identical
                      ? "loss0 identical to ideal channel\n"
                      : "DETERMINISM VIOLATION: lossPct=0 differs from "
                        "the ideal channel\n");

    // ---- Burst sensitivity: correlated loss at equal average loss --
    // Gilbert–Elliott chains parametrized to the same 5% mean loss as
    // the i.i.d. row above, sweeping the expected burst (bad-state
    // sojourn) length. Length 1 is the memoryless corner; longer
    // bursts concentrate the same loss budget into error trains that
    // hit the retry backoff much harder. Appended burst-off twins
    // carry live-looking chain knobs with enabled = false and must be
    // bit-identical to the lossPct = 0 points — a disabled chain may
    // not draw a single random number.
    const double burst_mean = 5.0;
    const std::vector<double> burst_lens =
        harness::sweepMode() == harness::SweepMode::Quick
            ? std::vector<double>{1.0, 8.0}
            : std::vector<double>{1.0, 2.0, 4.0, 8.0};

    harness::ParallelSweep burst_sweep;
    // idx[len][app][kind], then one burst-off twin per (app, kind).
    std::vector<std::vector<std::array<std::size_t, 2>>> burst_grid(
        burst_lens.size());
    for (std::size_t l = 0; l < burst_lens.size(); ++l) {
        for (const auto &name : loss_apps) {
            const auto &app = workloads::appByName(name);
            std::array<std::size_t, 2> cell{};
            for (std::size_t k = 0; k < loss_kinds.size(); ++k) {
                auto cfg = core::MachineConfig::make(loss_kinds[k], cores,
                                                     Variant::Default);
                cfg.wireless.burst = wireless::BurstParams::fromMean(
                    burst_mean, burst_lens[l]);
                cell[k] = burst_sweep.add(cfg, [&app](core::Machine &m) {
                    return workloads::runAppOn(app, m);
                });
            }
            burst_grid[l].push_back(cell);
        }
    }
    std::vector<std::array<std::size_t, 2>> burst_off_grid;
    for (const auto &name : loss_apps) {
        const auto &app = workloads::appByName(name);
        std::array<std::size_t, 2> cell{};
        for (std::size_t k = 0; k < loss_kinds.size(); ++k) {
            auto cfg = core::MachineConfig::make(loss_kinds[k], cores,
                                                 Variant::Default);
            cfg.wireless.burst.enabled = false;
            cfg.wireless.burst.goodLossPct = 7.0;
            cfg.wireless.burst.badLossPct = 90.0;
            cfg.wireless.burst.pGoodToBad = 0.3;
            cfg.wireless.burst.pBadToGood = 0.1;
            cell[k] = burst_sweep.add(cfg, [&app](core::Machine &m) {
                return workloads::runAppOn(app, m);
            });
        }
        burst_off_grid.push_back(cell);
    }
    const auto burst_results = burst_sweep.run();

    bool burst_off_identical = true;
    bool burst_diverges = false;
    // The i.i.d. row with the same 5% mean sits in the loss table.
    std::size_t iid5 = 0;
    while (loss_levels[iid5] != 5.0)
        ++iid5;
    for (std::size_t a = 0; a < loss_apps.size(); ++a) {
        for (std::size_t k = 0; k < loss_kinds.size(); ++k) {
            burst_off_identical =
                burst_off_identical &&
                workloads::bitIdentical(
                    loss_results[loss_grid[0][a][k]],
                    burst_results[burst_off_grid[a][k]]);
            for (std::size_t l = 0; l < burst_lens.size(); ++l)
                burst_diverges =
                    burst_diverges ||
                    burst_results[burst_grid[l][a][k]].cycles !=
                        loss_results[loss_grid[iid5][a][k]].cycles;
        }
    }

    harness::TextTable burst_fig(
        "Burst sensitivity: geomean slowdown vs ideal channel at 5% "
        "mean loss (Default variant, " +
        std::to_string(cores) + " cores)");
    burst_fig.header({"Burst len", "WiSyncNoT", "WiSync", "Drops",
                      "Rexmit", "Giveups"});
    for (std::size_t l = 0; l < burst_lens.size(); ++l) {
        std::vector<double> slow_not, slow_full;
        std::uint64_t drops = 0, rexmit = 0, giveups = 0;
        for (std::size_t a = 0; a < loss_apps.size(); ++a) {
            const auto &r0n = loss_results[loss_grid[0][a][0]];
            const auto &r0f = loss_results[loss_grid[0][a][1]];
            const auto &rn = burst_results[burst_grid[l][a][0]];
            const auto &rf = burst_results[burst_grid[l][a][1]];
            slow_not.push_back(static_cast<double>(rn.cycles) /
                               static_cast<double>(r0n.cycles));
            slow_full.push_back(static_cast<double>(rf.cycles) /
                                static_cast<double>(r0f.cycles));
            drops += rn.wirelessDrops + rf.wirelessDrops;
            rexmit += rn.macRetransmits + rf.macRetransmits;
            giveups += rn.macGiveups + rf.macGiveups;
        }
        burst_fig.row({harness::fmt(burst_lens[l], 0),
                       harness::fmt(harness::geomean(slow_not)),
                       harness::fmt(harness::geomean(slow_full)),
                       std::to_string(drops), std::to_string(rexmit),
                       std::to_string(giveups)});
    }
    burst_fig.print(std::cout);
    std::cout << (burst_off_identical
                      ? "burst-off identical to ideal channel\n"
                      : "DETERMINISM VIOLATION: disabled burst chain "
                        "perturbed the ideal channel\n");
    std::cout << (burst_diverges
                      ? "equal-mean bursty loss diverges from i.i.d.\n"
                      : "SENSITIVITY VIOLATION: burst chains "
                        "indistinguishable from i.i.d. loss\n");

    const bool ok = loss0_identical && burst_off_identical && burst_diverges;
    return ok ? 0 : 1;
}
