/**
 * @file
 * Regenerates Figure 11: geometric-mean speedup over Baseline of
 * Baseline+, WiSyncNoT and WiSync under the Table 6 memory/network
 * variants at 64 cores. Expected shape (paper): WiSync gains grow
 * with a slower NoC and shrink with a faster one; the L2 and BM
 * latency variations barely move the needle.
 *
 * To keep the run time reasonable this uses a representative subset
 * of the suite (the sync-intensive apps plus several sync-light ones,
 * preserving the mix); the full suite is used with WISYNC_FULL=1.
 *
 * The (variant x app x kind) grid — the largest figure grid — runs
 * through ParallelSweep; geomeans are folded from the merged results.
 */

#include <array>
#include <iostream>
#include <string>
#include <vector>

#include "harness/parallel_sweep.hh"
#include "harness/report.hh"
#include "workloads/apps.hh"

using namespace wisync;

int
main()
{
    using core::ConfigKind;
    using core::Variant;
    const std::uint32_t cores =
        harness::sweepMode() == harness::SweepMode::Quick ? 16 : 64;

    std::vector<std::string> names;
    if (harness::sweepMode() == harness::SweepMode::Full) {
        for (const auto &app : workloads::appSuite())
            names.push_back(app.name);
    } else {
        names = {"streamcluster", "ocean-c", "raytrace", "radiosity",
                 "water-ns",      "barnes",  "fft",      "blackscholes",
                 "canneal",       "lu-c"};
    }
    const std::vector<Variant> variants = {
        Variant::Default, Variant::SlowNet, Variant::SlowNetL2,
        Variant::FastNet, Variant::SlowBmem};

    const std::array<ConfigKind, 4> kinds = {
        ConfigKind::Baseline, ConfigKind::BaselinePlus,
        ConfigKind::WiSyncNoT, ConfigKind::WiSync};

    harness::ParallelSweep sweep;
    struct Cell
    {
        std::array<std::size_t, 4> idx;
    };
    // One Cell per (variant, app), in declaration order.
    std::vector<std::vector<Cell>> grid(variants.size());
    for (std::size_t v = 0; v < variants.size(); ++v) {
        for (const auto &name : names) {
            const auto &app = workloads::appByName(name);
            Cell cell{};
            for (std::size_t k = 0; k < kinds.size(); ++k) {
                cell.idx[k] = sweep.add(
                    core::MachineConfig::make(kinds[k], cores, variants[v]),
                    [&app](core::Machine &m) {
                        return workloads::runAppOn(app, m);
                    });
            }
            grid[v].push_back(cell);
        }
    }
    const auto results = sweep.run();

    harness::TextTable fig("Figure 11: geomean speedup over Baseline "
                           "under Table 6 variants, " +
                           std::to_string(cores) + " cores");
    fig.header({"Variant", "Baseline+", "WiSyncNoT", "WiSync"});
    for (std::size_t v = 0; v < variants.size(); ++v) {
        std::vector<double> sp_plus, sp_not, sp_full;
        for (const auto &cell : grid[v]) {
            const double b =
                static_cast<double>(results[cell.idx[0]].cycles);
            sp_plus.push_back(
                b / static_cast<double>(results[cell.idx[1]].cycles));
            sp_not.push_back(
                b / static_cast<double>(results[cell.idx[2]].cycles));
            sp_full.push_back(
                b / static_cast<double>(results[cell.idx[3]].cycles));
        }
        fig.row({core::toString(variants[v]),
                 harness::fmt(harness::geomean(sp_plus)),
                 harness::fmt(harness::geomean(sp_not)),
                 harness::fmt(harness::geomean(sp_full))});
    }
    fig.print(std::cout);
    return 0;
}
