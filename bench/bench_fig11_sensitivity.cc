/**
 * @file
 * Regenerates Figure 11: geometric-mean speedup over Baseline of
 * Baseline+, WiSyncNoT and WiSync under the Table 6 memory/network
 * variants at 64 cores. Expected shape (paper): WiSync gains grow
 * with a slower NoC and shrink with a faster one; the L2 and BM
 * latency variations barely move the needle.
 *
 * To keep the run time reasonable this uses a representative subset
 * of the suite (the sync-intensive apps plus several sync-light ones,
 * preserving the mix); the full suite is used with WISYNC_FULL=1.
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/report.hh"
#include "harness/sweep.hh"
#include "workloads/apps.hh"

using namespace wisync;

int
main()
{
    using core::ConfigKind;
    using core::Variant;
    harness::SweepHarness machines;
    const std::uint32_t cores =
        harness::sweepMode() == harness::SweepMode::Quick ? 16 : 64;

    std::vector<std::string> names;
    if (harness::sweepMode() == harness::SweepMode::Full) {
        for (const auto &app : workloads::appSuite())
            names.push_back(app.name);
    } else {
        names = {"streamcluster", "ocean-c", "raytrace", "radiosity",
                 "water-ns",      "barnes",  "fft",      "blackscholes",
                 "canneal",       "lu-c"};
    }
    const std::vector<Variant> variants = {
        Variant::Default, Variant::SlowNet, Variant::SlowNetL2,
        Variant::FastNet, Variant::SlowBmem};

    harness::TextTable fig("Figure 11: geomean speedup over Baseline "
                           "under Table 6 variants, " +
                           std::to_string(cores) + " cores");
    fig.header({"Variant", "Baseline+", "WiSyncNoT", "WiSync"});
    for (const auto v : variants) {
        std::vector<double> sp_plus, sp_not, sp_full;
        for (const auto &name : names) {
            const auto &app = workloads::appByName(name);
            auto run = [&](ConfigKind kind) {
                return workloads::runAppOn(
                    app, machines.acquire(
                             core::MachineConfig::make(kind, cores, v)));
            };
            const double b = static_cast<double>(
                run(ConfigKind::Baseline).cycles);
            sp_plus.push_back(
                b / static_cast<double>(
                        run(ConfigKind::BaselinePlus).cycles));
            sp_not.push_back(
                b / static_cast<double>(
                        run(ConfigKind::WiSyncNoT).cycles));
            sp_full.push_back(
                b /
                static_cast<double>(run(ConfigKind::WiSync).cycles));
        }
        fig.row({core::toString(v), harness::fmt(harness::geomean(sp_plus)),
                 harness::fmt(harness::geomean(sp_not)),
                 harness::fmt(harness::geomean(sp_full))});
    }
    fig.print(std::cout);
    return 0;
}
