/**
 * @file
 * Ablation of the MAC protocol (wireless/mac/): BRS vs token vs
 * fuzzy-token vs adaptive, across contention regimes.
 *
 * Two workloads bracket the protocol space on WiSyncNoT (every
 * synchronization op rides the Data channel, so the MAC is on the
 * critical path): the barrier-storm TightLoop — all cores broadcast
 * in bursts, random access thrashes — and the LIFO CAS kernel —
 * staggered RMW traffic where token rotation latency is pure
 * overhead. The grid (protocol x workload x core count) runs through
 * harness::ParallelSweep twice, serially and at the environment's
 * worker count, and the merged results — including the per-protocol
 * MAC telemetry — must be bit-identical: the MAC ablation record in
 * BENCH_sweep.json carries that verdict plus the deterministic
 * counters bench/check_bench.py gates (token collisions must be
 * exactly zero, the token must actually rotate, the adaptive
 * controller must actually switch).
 *
 * With --json the bench emits only the machine-readable record (for
 * bench/run_bench.sh --sweep); by default it prints the ablation
 * table.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/parallel_sweep.hh"
#include "harness/report.hh"
#include "workloads/cas_kernels.hh"
#include "workloads/tight_loop.hh"
#include "wireless/mac/mac_kind.hh"

using namespace wisync;

namespace {

struct Point
{
    wireless::MacKind mac;
    const char *workload;
    std::uint32_t cores;
};

} // namespace

int
main(int argc, char **argv)
{
    const bool json_only =
        argc > 1 && std::strcmp(argv[1], "--json") == 0;
    const bool quick = harness::sweepMode() == harness::SweepMode::Quick;

    const std::vector<wireless::MacKind> kinds = {
        wireless::MacKind::Brs, wireless::MacKind::Token,
        wireless::MacKind::FuzzyToken, wireless::MacKind::Adaptive};
    const std::vector<std::uint32_t> core_counts =
        quick ? std::vector<std::uint32_t>{16}
              : std::vector<std::uint32_t>{16, 64};

    workloads::TightLoopParams tight;
    tight.iterations = quick ? 6 : 12;
    tight.runLimit = 20'000'000;
    workloads::CasKernelParams cas;
    cas.criticalSectionInstr = 128;
    cas.duration = quick ? 40'000 : 120'000;

    harness::ParallelSweep sweep;
    std::vector<Point> grid;
    for (const auto mac : kinds) {
        for (const auto cores : core_counts) {
            auto cfg = core::MachineConfig::make(
                core::ConfigKind::WiSyncNoT, cores);
            cfg.wireless.macKind = mac;
            grid.push_back({mac, "TightLoop", cores});
            sweep.add(cfg, [tight](core::Machine &m) {
                return workloads::runTightLoopOn(m, tight);
            });
            grid.push_back({mac, "CAS-LIFO", cores});
            sweep.add(cfg, [cas](core::Machine &m) {
                return workloads::runCasKernelOn(workloads::CasKernel::Lifo,
                                                 m, cas);
            });
        }
    }

    // The determinism leg: serial vs the environment's worker count
    // must merge to bit-identical results, MAC telemetry included.
    const auto serial = sweep.run(1);
    const unsigned threads = harness::ParallelSweep::threads();
    const auto parallel = sweep.run(threads);
    bool identical = serial.size() == parallel.size();
    for (std::size_t i = 0; identical && i < serial.size(); ++i)
        identical = workloads::bitIdentical(serial[i], parallel[i]);

    bool all_completed = true;
    std::uint64_t brs_collisions = 0, token_collisions = 0;
    std::uint64_t token_rotations = 0, fuzzy_grabs_points = 0;
    std::uint64_t adaptive_switches = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const auto &r = serial[i];
        all_completed = all_completed && r.completed;
        switch (grid[i].mac) {
          case wireless::MacKind::Brs:
            brs_collisions += r.collisions;
            break;
          case wireless::MacKind::Token:
            token_collisions += r.collisions;
            token_rotations += r.macTokenRotations;
            break;
          case wireless::MacKind::FuzzyToken:
            fuzzy_grabs_points += r.macTokenRotations > 0 ? 1 : 0;
            break;
          case wireless::MacKind::Adaptive:
            adaptive_switches += r.macModeSwitches;
            break;
        }
    }

    if (json_only) {
        std::printf(
            "{\"grid\": \"mac_ablation\", \"points\": %zu, "
            "\"threads\": %u, \"results_identical\": %s, "
            "\"all_completed\": %s, \"brs_collisions\": %llu, "
            "\"token_collisions\": %llu, \"token_rotations\": %llu, "
            "\"fuzzy_rotating_points\": %llu, "
            "\"adaptive_mode_switches\": %llu}\n",
            grid.size(), threads, identical ? "true" : "false",
            all_completed ? "true" : "false",
            static_cast<unsigned long long>(brs_collisions),
            static_cast<unsigned long long>(token_collisions),
            static_cast<unsigned long long>(token_rotations),
            static_cast<unsigned long long>(fuzzy_grabs_points),
            static_cast<unsigned long long>(adaptive_switches));
        return identical && all_completed ? 0 : 1;
    }

    harness::TextTable tab("Ablation: MAC protocol x workload "
                           "(WiSyncNoT)");
    tab.header({"MAC", "Workload", "Cores", "Cycles", "Ops/kcycle",
                "Collisions", "Backoff cyc", "Token waits", "Rotations",
                "Switches"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const auto &r = serial[i];
        tab.row({toString(grid[i].mac), grid[i].workload,
                 std::to_string(grid[i].cores),
                 r.completed ? std::to_string(r.cycles)
                             : std::string("run limit"),
                 harness::fmt(r.opsPerKiloCycle(), 2),
                 std::to_string(r.collisions),
                 std::to_string(r.macBackoffCycles),
                 std::to_string(r.macTokenWaits),
                 std::to_string(r.macTokenRotations),
                 std::to_string(r.macModeSwitches)});
    }
    tab.print(std::cout);
    std::cout << (identical ? "serial/parallel results identical\n"
                            : "DETERMINISM VIOLATION: serial and "
                              "parallel results differ\n");
    return identical && all_completed ? 0 : 1;
}
