/**
 * @file
 * Ablation of the MAC protocol (wireless/mac/): BRS vs token vs
 * fuzzy-token vs adaptive, across contention regimes.
 *
 * Two workloads bracket the protocol space on WiSyncNoT (every
 * synchronization op rides the Data channel, so the MAC is on the
 * critical path): the barrier-storm TightLoop — all cores broadcast
 * in bursts, random access thrashes — and the LIFO CAS kernel —
 * staggered RMW traffic where token rotation latency is pure
 * overhead. The grid (protocol x workload x core count) runs through
 * harness::ParallelSweep twice, serially and at the environment's
 * worker count, and the merged results — including the per-protocol
 * MAC telemetry — must be bit-identical: the MAC ablation record in
 * BENCH_sweep.json carries that verdict plus the deterministic
 * counters bench/check_bench.py gates (token collisions must be
 * exactly zero, the token must actually rotate, the adaptive
 * controller must actually switch).
 *
 * A second grid exercises the lossy-channel model: every protocol
 * runs the TightLoop storm at lossPct = 10 (plus an SNR-derived
 * point), serially and in parallel, and the record gains the
 * reliability gates — loss0_identical (a lossPct = 0 config with
 * non-default ack/retry knobs must be bit-identical to the ideal
 * grid: the reliability layer may not move a cycle until a packet is
 * actually lost) and all_delivered_or_reported (every lossy point
 * completes, and every drop is accounted for by a retransmission or
 * a typed give-up — no silent loss, no hang). Two bursty rows per
 * protocol extend the grid: a Gilbert–Elliott chain at the same 10%
 * mean loss as the i.i.d. row (whose cycle count must measurably
 * diverge — burst_vs_iid_differs — since equal average loss clusters
 * the retries differently) and a burst-off twin with every chain knob
 * moved off its default that must stay bit-identical to the ideal
 * grid (burst_identity_off).
 *
 * With --json the bench emits only the machine-readable record (for
 * bench/run_bench.sh --sweep); by default it prints the ablation
 * table.
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/parallel_sweep.hh"
#include "harness/report.hh"
#include "wireless/burst.hh"
#include "wireless/mac/mac_kind.hh"
#include "workloads/cas_kernels.hh"
#include "workloads/tight_loop.hh"

using namespace wisync;

namespace {

struct Point
{
    wireless::MacKind mac;
    const char *workload;
    std::uint32_t cores;
};

} // namespace

int
main(int argc, char **argv)
{
    const bool json_only =
        argc > 1 && std::strcmp(argv[1], "--json") == 0;
    const bool quick = harness::sweepMode() == harness::SweepMode::Quick;

    const std::vector<wireless::MacKind> kinds = {
        wireless::MacKind::Brs, wireless::MacKind::Token,
        wireless::MacKind::FuzzyToken, wireless::MacKind::Adaptive};
    const std::vector<std::uint32_t> core_counts =
        quick ? std::vector<std::uint32_t>{16}
              : std::vector<std::uint32_t>{16, 64};

    workloads::TightLoopParams tight;
    tight.iterations = quick ? 6 : 12;
    tight.runLimit = 20'000'000;
    workloads::CasKernelParams cas;
    cas.criticalSectionInstr = 128;
    cas.duration = quick ? 40'000 : 120'000;

    harness::ParallelSweep sweep;
    std::vector<Point> grid;
    for (const auto mac : kinds) {
        for (const auto cores : core_counts) {
            auto cfg = core::MachineConfig::make(
                core::ConfigKind::WiSyncNoT, cores);
            cfg.wireless.macKind = mac;
            grid.push_back({mac, "TightLoop", cores});
            sweep.add(cfg, [tight](core::Machine &m) {
                return workloads::runTightLoopOn(m, tight);
            });
            grid.push_back({mac, "CAS-LIFO", cores});
            sweep.add(cfg, [cas](core::Machine &m) {
                return workloads::runCasKernelOn(workloads::CasKernel::Lifo,
                                                 m, cas);
            });
        }
    }

    // The determinism leg: serial vs the environment's worker count
    // must merge to bit-identical results, MAC telemetry included.
    const auto serial = sweep.run(1);
    const unsigned threads = harness::ParallelSweep::threads();
    const auto parallel = sweep.run(threads);
    bool identical = serial.size() == parallel.size();
    for (std::size_t i = 0; identical && i < serial.size(); ++i)
        identical = workloads::bitIdentical(serial[i], parallel[i]);

    // ---- Lossy-channel grid ---------------------------------------
    // Per protocol: the TightLoop storm at lossPct = 10, one
    // SNR-derived point (berFromSnr at a transmit power low enough to
    // leave the far links marginal), and a lossPct = 0 twin with
    // non-default ack/retry knobs that must be bit-identical to the
    // ideal grid's point — the reliability layer may not perturb a
    // run until a packet is actually lost.
    struct LossPoint
    {
        wireless::MacKind mac;
        const char *channel;
        /** Ideal-grid index this point must match (or SIZE_MAX). */
        std::size_t twin_of;
    };
    harness::ParallelSweep loss_sweep;
    std::vector<LossPoint> loss_grid;
    const std::uint32_t loss_cores = 16;
    for (const auto mac : kinds) {
        // Index of the ideal (mac, TightLoop, 16) point in `grid`.
        std::size_t ideal = 0;
        while (grid[ideal].mac != mac ||
               std::strcmp(grid[ideal].workload, "TightLoop") != 0 ||
               grid[ideal].cores != loss_cores)
            ++ideal;

        auto lossy = core::MachineConfig::make(core::ConfigKind::WiSyncNoT,
                                               loss_cores);
        lossy.wireless.macKind = mac;
        lossy.wireless.lossPct = 10.0;
        loss_grid.push_back({mac, "loss=10%", SIZE_MAX});
        loss_sweep.add(lossy, [tight](core::Machine &m) {
            return workloads::runTightLoopOn(m, tight);
        });

        auto snr = core::MachineConfig::make(core::ConfigKind::WiSyncNoT,
                                             loss_cores);
        snr.wireless.macKind = mac;
        snr.wireless.berFromSnr = true;
        // 0 dBm leaves the corner transmitters' farthest links
        // marginal (broadcast PER up to ~9%) while central nodes stay
        // clean — the heterogeneous regime the SNR model is for.
        snr.wireless.txPowerDbm = 0.0;
        loss_grid.push_back({mac, "snr", SIZE_MAX});
        loss_sweep.add(snr, [tight](core::Machine &m) {
            return workloads::runTightLoopOn(m, tight);
        });

        auto twin = core::MachineConfig::make(core::ConfigKind::WiSyncNoT,
                                              loss_cores);
        twin.wireless.macKind = mac;
        twin.wireless.ackTimeoutCycles = 9;
        twin.wireless.maxRetries = 3;
        twin.wireless.retryBackoffMaxExp = 2;
        loss_grid.push_back({mac, "loss=0", ideal});
        loss_sweep.add(twin, [tight](core::Machine &m) {
            return workloads::runTightLoopOn(m, tight);
        });

        // Correlated loss at the same 10% mean: a Gilbert–Elliott
        // chain with 4-transmission mean bursts. Equal average loss,
        // different drop clustering — the retry cost must measurably
        // diverge from the i.i.d. row (gated below), or the burst
        // model is indistinguishable from the knob it replaces.
        auto bursty = core::MachineConfig::make(
            core::ConfigKind::WiSyncNoT, loss_cores);
        bursty.wireless.macKind = mac;
        bursty.wireless.burst =
            wireless::BurstParams::fromMean(10.0, 4.0);
        loss_grid.push_back({mac, "burst=10%/4", SIZE_MAX});
        loss_sweep.add(bursty, [tight](core::Machine &m) {
            return workloads::runTightLoopOn(m, tight);
        });

        // Burst-off twin: every burst knob moved off its default but
        // the enable gate closed — must be bit-identical to the ideal
        // grid's point (the chain is dead state until enabled).
        auto burst_off = core::MachineConfig::make(
            core::ConfigKind::WiSyncNoT, loss_cores);
        burst_off.wireless.macKind = mac;
        burst_off.wireless.burst.enabled = false;
        burst_off.wireless.burst.goodLossPct = 9.0;
        burst_off.wireless.burst.badLossPct = 80.0;
        burst_off.wireless.burst.pGoodToBad = 0.4;
        burst_off.wireless.burst.pBadToGood = 0.2;
        loss_grid.push_back({mac, "burst-off", ideal});
        loss_sweep.add(burst_off, [tight](core::Machine &m) {
            return workloads::runTightLoopOn(m, tight);
        });
    }
    const auto loss_serial = loss_sweep.run(1);
    const auto loss_parallel = loss_sweep.run(threads);
    for (std::size_t i = 0; identical && i < loss_serial.size(); ++i)
        identical =
            workloads::bitIdentical(loss_serial[i], loss_parallel[i]);

    bool loss0_identical = true;
    bool burst_identity_off = true;
    bool all_delivered_or_reported = true;
    bool burst_vs_iid_differs = false;
    std::uint64_t lossy_drops = 0, lossy_retransmits = 0,
                  lossy_giveups = 0, bursty_drops = 0;
    for (std::size_t i = 0; i < loss_grid.size(); ++i) {
        const auto &r = loss_serial[i];
        if (loss_grid[i].twin_of != SIZE_MAX) {
            const bool same =
                workloads::bitIdentical(r, serial[loss_grid[i].twin_of]);
            if (std::strcmp(loss_grid[i].channel, "burst-off") == 0)
                burst_identity_off = burst_identity_off && same;
            else
                loss0_identical = loss0_identical && same;
            continue;
        }
        // Lossy points (i.i.d., SNR-derived and bursty alike): the
        // kernel must terminate, and every drop must be answered by a
        // retransmission or a typed give-up.
        all_delivered_or_reported =
            all_delivered_or_reported && r.completed &&
            (r.wirelessDrops == 0 ||
             r.macRetransmits + r.macGiveups > 0) &&
            r.macAckTimeouts == r.macRetransmits + r.macGiveups;
        if (std::strcmp(loss_grid[i].channel, "burst=10%/4") == 0)
            bursty_drops += r.wirelessDrops;
        else
            lossy_drops += r.wirelessDrops;
        lossy_retransmits += r.macRetransmits;
        lossy_giveups += r.macGiveups;
    }
    // Equal-mean-loss comparison: for each protocol the bursty row and
    // the i.i.d. lossPct = 10 row average the same loss but cluster it
    // differently; at least one protocol must show a different cycle
    // count, or the chain is observationally dead weight. The per-mac
    // stride in loss_grid is 5 points (loss, snr, twin, burst, off).
    for (std::size_t m = 0; m < kinds.size(); ++m) {
        const auto &iid = loss_serial[m * 5];
        const auto &burst = loss_serial[m * 5 + 3];
        burst_vs_iid_differs =
            burst_vs_iid_differs || iid.cycles != burst.cycles;
    }

    bool all_completed = true;
    std::uint64_t brs_collisions = 0, token_collisions = 0;
    std::uint64_t token_rotations = 0, fuzzy_grabs_points = 0;
    std::uint64_t adaptive_switches = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const auto &r = serial[i];
        all_completed = all_completed && r.completed;
        switch (grid[i].mac) {
          case wireless::MacKind::Brs:
            brs_collisions += r.collisions;
            break;
          case wireless::MacKind::Token:
            token_collisions += r.collisions;
            token_rotations += r.macTokenRotations;
            break;
          case wireless::MacKind::FuzzyToken:
            fuzzy_grabs_points += r.macTokenRotations > 0 ? 1 : 0;
            break;
          case wireless::MacKind::Adaptive:
            adaptive_switches += r.macModeSwitches;
            break;
        }
    }

    const bool ok = identical && all_completed && loss0_identical &&
                    all_delivered_or_reported && burst_identity_off &&
                    burst_vs_iid_differs;

    if (json_only) {
        std::printf(
            "{\"grid\": \"mac_ablation\", \"points\": %zu, "
            "\"threads\": %u, \"results_identical\": %s, "
            "\"all_completed\": %s, \"brs_collisions\": %llu, "
            "\"token_collisions\": %llu, \"token_rotations\": %llu, "
            "\"fuzzy_rotating_points\": %llu, "
            "\"adaptive_mode_switches\": %llu, "
            "\"lossy_points\": %zu, \"loss0_identical\": %s, "
            "\"all_delivered_or_reported\": %s, "
            "\"lossy_drops\": %llu, \"lossy_retransmits\": %llu, "
            "\"lossy_giveups\": %llu, \"burst_identity_off\": %s, "
            "\"bursty_drops\": %llu, \"burst_vs_iid_differs\": %s}\n",
            grid.size(), threads, identical ? "true" : "false",
            all_completed ? "true" : "false",
            static_cast<unsigned long long>(brs_collisions),
            static_cast<unsigned long long>(token_collisions),
            static_cast<unsigned long long>(token_rotations),
            static_cast<unsigned long long>(fuzzy_grabs_points),
            static_cast<unsigned long long>(adaptive_switches),
            loss_grid.size(), loss0_identical ? "true" : "false",
            all_delivered_or_reported ? "true" : "false",
            static_cast<unsigned long long>(lossy_drops),
            static_cast<unsigned long long>(lossy_retransmits),
            static_cast<unsigned long long>(lossy_giveups),
            burst_identity_off ? "true" : "false",
            static_cast<unsigned long long>(bursty_drops),
            burst_vs_iid_differs ? "true" : "false");
        return ok ? 0 : 1;
    }

    harness::TextTable tab("Ablation: MAC protocol x workload "
                           "(WiSyncNoT)");
    tab.header({"MAC", "Workload", "Cores", "Cycles", "Ops/kcycle",
                "Collisions", "Backoff cyc", "Token waits", "Rotations",
                "Switches"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const auto &r = serial[i];
        tab.row({toString(grid[i].mac), grid[i].workload,
                 std::to_string(grid[i].cores),
                 r.completed ? std::to_string(r.cycles)
                             : std::string("run limit"),
                 harness::fmt(r.opsPerKiloCycle(), 2),
                 std::to_string(r.collisions),
                 std::to_string(r.macBackoffCycles),
                 std::to_string(r.macTokenWaits),
                 std::to_string(r.macTokenRotations),
                 std::to_string(r.macModeSwitches)});
    }
    tab.print(std::cout);
    std::cout << (identical ? "serial/parallel results identical\n"
                            : "DETERMINISM VIOLATION: serial and "
                              "parallel results differ\n");

    harness::TextTable loss_tab("Lossy channel: MAC protocol x channel "
                                "(WiSyncNoT TightLoop, 16 cores)");
    loss_tab.header({"MAC", "Channel", "Cycles", "Drops", "Timeouts",
                     "Rexmit", "Giveups"});
    for (std::size_t i = 0; i < loss_grid.size(); ++i) {
        const auto &r = loss_serial[i];
        loss_tab.row({toString(loss_grid[i].mac), loss_grid[i].channel,
                      r.completed ? std::to_string(r.cycles)
                                  : std::string("run limit"),
                      std::to_string(r.wirelessDrops),
                      std::to_string(r.macAckTimeouts),
                      std::to_string(r.macRetransmits),
                      std::to_string(r.macGiveups)});
    }
    loss_tab.print(std::cout);
    std::cout << (loss0_identical
                      ? "loss0 identical to ideal channel\n"
                      : "DETERMINISM VIOLATION: lossPct=0 differs from "
                        "the ideal channel\n");
    std::cout << (all_delivered_or_reported
                      ? "all lossy sends delivered or reported\n"
                      : "RELIABILITY VIOLATION: drops unaccounted for\n");
    std::cout << (burst_identity_off
                      ? "burst-off identical to ideal channel\n"
                      : "DETERMINISM VIOLATION: disabled burst chain "
                        "moved a simulated cycle\n");
    std::cout << (burst_vs_iid_differs
                      ? "equal-mean bursty loss diverges from i.i.d.\n"
                      : "MODEL VIOLATION: bursty and i.i.d. loss are "
                        "indistinguishable at equal mean\n");
    return ok ? 0 : 1;
}
