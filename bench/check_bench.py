#!/usr/bin/env python3
"""Ratio-based regression gate over BENCH_kernel.json.

Absolute throughput numbers are far too noisy on shared CI runners to
gate on, so every rule below is either a same-process A/B ratio
(numerator and denominator measured in the same binary on the same
runner, so machine speed cancels) or a deterministic counter emitted by
the benchmark itself.

Usage: bench/check_bench.py [BENCH_kernel.json]
Exit status 0 = all gates pass.
"""

import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    by_name = {}
    for b in data.get("benchmarks", []):
        by_name[b["name"]] = b
    return by_name


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_kernel.json"
    bench = load(path)
    failures = []
    checks = []

    def need(name):
        if name not in bench:
            failures.append(f"missing benchmark: {name}")
            return None
        return bench[name]

    def ratio_gate(num, den, minimum, why):
        a, b = need(num), need(den)
        if a is None or b is None:
            return
        r = a["items_per_second"] / b["items_per_second"]
        line = f"{num}/{den} = {r:.2f} (gate: >= {minimum}) — {why}"
        checks.append(line)
        if r < minimum:
            failures.append(f"FAIL {line}")

    def counter_gate(name, counter, op, bound, why):
        b = need(name)
        if b is None:
            return
        if counter not in b:
            failures.append(f"missing counter {name}:{counter}")
            return
        v = b[counter]
        ok = v <= bound if op == "<=" else v >= bound
        line = f"{name}:{counter} = {v} (gate: {op} {bound}) — {why}"
        checks.append(line)
        if not ok:
            failures.append(f"FAIL {line}")

    # Machine reuse: running a sweep point on a reset machine must be
    # substantially faster than a rebuild (the PR's raison d'être).
    ratio_gate("BM_MachineResetReuse", "BM_MachineBuildFresh", 1.15,
               "Machine::reset must beat full reconstruction")

    # Frame pool: pooled alloc/free must stay competitive with malloc
    # (it is normally faster; 0.7 absorbs runner noise).
    ratio_gate("BM_FramePoolChurn", "BM_HeapChurn", 0.7,
               "frame pool must not regress below the system allocator")

    # Deterministic scheduler-tier counters: the hot benches must never
    # spill into the overflow heap, and coroutine frames must be served
    # from the pool's free lists in steady state.
    counter_gate("BM_EngineScheduleRunNearFuture", "tier_heap", "<=", 0,
                 "near-future deltas belong in the calendar wheel")
    counter_gate("BM_CoroutineResumeZeroDelay", "tier_heap", "<=", 0,
                 "zero-delay resumes belong in the ready ring")
    counter_gate("BM_CoroutineChain", "pool_reuse_fraction", ">=", 0.9,
                 "steady-state frames must come from the free lists")
    counter_gate("BM_CoroutineChain", "pool_fallback_allocs", "<=", 0,
                 "model coroutine frames must fit the pooled classes")

    for line in checks:
        print(" ", line)
    if failures:
        print("\n".join(failures), file=sys.stderr)
        return 1
    print(f"all {len(checks)} bench gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
