#!/usr/bin/env python3
"""Ratio-based regression gate over BENCH_kernel.json.

Absolute throughput numbers are far too noisy on shared CI runners to
gate on, so every rule below is either a same-process A/B ratio
(numerator and denominator measured in the same binary on the same
runner, so machine speed cancels) or a deterministic counter emitted by
the benchmark itself.

With --sweep FILE the parallel-sweep A/B recorded in BENCH_sweep.json
is gated too: the same-process N-thread vs 1-thread wall-clock ratio
on the TightLoop grid must reach 1.5x. The gate only applies when the
run actually had more than one worker (a single-core runner records
threads == 1 and is skipped) — and the merged results must have been
identical, which bench_sweep_parallel verifies itself. The same record
carries fastpath_identical: the grid re-run with every uncontended
fast path disabled (WISYNC_NO_FASTPATH) must produce bit-identical
KernelResults, because the fast paths are a host-time optimization
that may never move a simulated cycle.

The MAC-protocol ablation record ("mac_ablation", emitted by
bench_ablation_mac --json) is gated on its deterministic simulation
counters, which are identical on every host and thread count:
serial/parallel result identity, every point completing, exactly zero
collisions under the token MAC (exclusive grants), a token that
actually rotates, and an adaptive controller that actually switches
policy under the barrier storm. The lossy-channel grid in the same
record adds loss0_identical (the reliability layer, compiled in but
disabled, may not move a simulated cycle) and
all_delivered_or_reported (under loss every kernel terminates and
every drop is answered by a retransmission or a typed give-up — no
silent loss, no hang), plus a sanity floor on lossy_drops (the loss
model must actually drop packets at lossPct = 10). The bursty-loss
rows in the same record add burst_identity_off (a disabled
Gilbert–Elliott chain may not move a cycle), a bursty_drops floor,
and burst_vs_iid_differs (equal-mean correlated loss must be
distinguishable from the i.i.d. draw).

The multi-chip record ("multichip", emitted by bench_multichip
--json) is gated the same way: serial/parallel identity of the chip
grid, every tiling completing, a scale-out sweep that actually
reaches >= 256 total cores, an inter-chip barrier measurably more
expensive than the intra-chip one (the bridge latency must show up,
or the bridge model is vacuous), and at least one frame actually
crossing the bridge. The lossy-bridge rows add a bridge_retries
floor (the retry machinery must engage), bridge_books_balance (drops
== timeouts == retransmits + give-ups at every point),
bridge_loss_identity (reliability knobs on a loss-free bridge are
inert) and channel_profile_differs (a per-slot loss profile step
must visibly shift the run).

The sweep-service record ("service", emitted by bench_service
--json) gates the service subsystem's contracts: service_identity
(cold, warm and 2-way-sharded batches bit-identical to a serial
uncached run), cache_hits >= duplicates (every injected duplicate
answered by the fingerprint-keyed result cache), warm_simulated == 0
(a repeated batch simulates nothing) and warm_speedup >= 2x (the
cache must clearly beat re-simulating; in practice it is orders of
magnitude). The persistence rows gate the durable cache:
warm_from_disk_identical (a CacheStore spill reloaded into a fresh
service answers the whole batch warm and bit-identical) and
salvaged_prefix_hits >= 1 (a file truncated mid-record salvages its
valid prefix and those records still serve their points).

Usage: bench/check_bench.py [BENCH_kernel.json] [--sweep BENCH_sweep.json]
Exit status 0 = all gates pass.
"""

import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    by_name = {}
    for b in data.get("benchmarks", []):
        by_name[b["name"]] = b
    return by_name


def main():
    args = sys.argv[1:]
    sweep_path = None
    if "--sweep" in args:
        i = args.index("--sweep")
        if i + 1 >= len(args):
            print("usage: check_bench.py [BENCH_kernel.json] "
                  "[--sweep BENCH_sweep.json]", file=sys.stderr)
            return 2
        sweep_path = args[i + 1]
        del args[i:i + 2]
    path = args[0] if args else "BENCH_kernel.json"
    bench = load(path)
    failures = []
    checks = []

    def need(name):
        if name not in bench:
            failures.append(f"missing benchmark: {name}")
            return None
        return bench[name]

    def ratio_gate(num, den, minimum, why):
        a, b = need(num), need(den)
        if a is None or b is None:
            return
        r = a["items_per_second"] / b["items_per_second"]
        line = f"{num}/{den} = {r:.2f} (gate: >= {minimum}) — {why}"
        checks.append(line)
        if r < minimum:
            failures.append(f"FAIL {line}")

    def counter_gate(name, counter, op, bound, why):
        b = need(name)
        if b is None:
            return
        if counter not in b:
            failures.append(f"missing counter {name}:{counter}")
            return
        v = b[counter]
        ok = v <= bound if op == "<=" else v >= bound
        line = f"{name}:{counter} = {v} (gate: {op} {bound}) — {why}"
        checks.append(line)
        if not ok:
            failures.append(f"FAIL {line}")

    # Machine reuse: running a sweep point on a reset machine must be
    # substantially faster than a rebuild (the PR's raison d'être).
    ratio_gate("BM_MachineResetReuse", "BM_MachineBuildFresh", 1.15,
               "Machine::reset must beat full reconstruction")

    # Uncontended fast paths: the frameless mesh chain must clearly
    # beat the wormhole coroutine on the same machine in the same
    # process, actually serve the whole stream (hit fraction), and
    # never touch the allocator (counted around engine.run() with the
    # replaced operator new). The BM broadcast and coherence ping-pong
    # twins gate against regression of the end-to-end message paths.
    ratio_gate("BM_MeshUncontendedFastPath", "BM_MeshUncontendedFallback",
               1.3, "frameless mesh chain must beat the wormhole path")
    counter_gate("BM_MeshUncontendedFastPath", "fastpath_hit_fraction",
                 ">=", 0.9, "uncontended stream must take the fast path")
    counter_gate("BM_MeshUncontendedFastPath", "heap_allocs", "<=", 0,
                 "uncontended mesh transfers must not allocate")
    ratio_gate("BM_BmBroadcastStore", "BM_BmBroadcastStoreNoFastpath",
               1.05, "frameless broadcast path must beat the send loop")
    counter_gate("BM_BmBroadcastStore", "fastpath_hit_fraction", ">=",
                 0.9, "single-sender broadcasts must take the fast path")
    counter_gate("BM_BmBroadcastStore", "heap_allocs", "<=", 0,
                 "uncontended broadcasts must not allocate")
    ratio_gate("BM_CoherentPingPong", "BM_CoherentPingPongNoFastpath",
               0.97, "fast paths must never slow the contended case")

    # Frame pool: pooled alloc/free must stay competitive with malloc
    # (it is normally faster; 0.7 absorbs runner noise).
    ratio_gate("BM_FramePoolChurn", "BM_HeapChurn", 0.7,
               "frame pool must not regress below the system allocator")

    # Deterministic scheduler-tier counters: the hot benches must never
    # spill into the overflow heap, and coroutine frames must be served
    # from the pool's free lists in steady state.
    counter_gate("BM_EngineScheduleRunNearFuture", "tier_heap", "<=", 0,
                 "near-future deltas belong in the calendar wheel")
    counter_gate("BM_CoroutineResumeZeroDelay", "tier_heap", "<=", 0,
                 "zero-delay resumes belong in the ready ring")
    counter_gate("BM_CoroutineChain", "pool_reuse_fraction", ">=", 0.9,
                 "steady-state frames must come from the free lists")
    counter_gate("BM_CoroutineChain", "pool_fallback_allocs", "<=", 0,
                 "model coroutine frames must fit the pooled classes")

    if sweep_path is not None:
        with open(sweep_path) as f:
            sweep = json.load(f)
        par = sweep.get("parallel")
        if par is None:
            failures.append(f"missing 'parallel' record in {sweep_path}")
        else:
            if not par.get("results_identical", False):
                failures.append(
                    "FAIL parallel sweep results differ from serial — "
                    "determinism contract broken")
            if not par.get("fastpath_identical", False):
                failures.append(
                    "FAIL fastpath-on vs fastpath-off KernelResults "
                    "differ — the fast paths changed simulated cycles")
            threads = par.get("threads", 1)
            speedup = par.get("sweep_parallel_speedup", 0.0)
            if threads >= 2:
                line = (f"sweep_parallel_speedup = {speedup} at "
                        f"{threads} threads (gate: >= 1.5) — N workers "
                        "must beat the serial sweep")
                checks.append(line)
                if speedup < 1.5:
                    failures.append(f"FAIL {line}")
            else:
                checks.append(
                    f"sweep_parallel_speedup = {speedup} — gate skipped "
                    "(single worker available)")

        mac = sweep.get("mac_ablation")
        if mac is None:
            failures.append(f"missing 'mac_ablation' record in "
                            f"{sweep_path}")
        else:
            def mac_gate(cond, line):
                checks.append(line)
                if not cond:
                    failures.append(f"FAIL {line}")

            mac_gate(mac.get("results_identical", False),
                     "mac_ablation results_identical — protocol grid "
                     "must merge identically at any thread count")
            mac_gate(mac.get("all_completed", False),
                     "mac_ablation all_completed — no protocol may "
                     "livelock a workload")
            mac_gate(mac.get("token_collisions", -1) == 0,
                     f"mac_ablation token_collisions = "
                     f"{mac.get('token_collisions')} (gate: == 0) — "
                     "exclusive token grants cannot collide")
            mac_gate(mac.get("token_rotations", 0) >= 1,
                     f"mac_ablation token_rotations = "
                     f"{mac.get('token_rotations')} (gate: >= 1) — "
                     "the token must actually rotate")
            mac_gate(mac.get("adaptive_mode_switches", 0) >= 1,
                     f"mac_ablation adaptive_mode_switches = "
                     f"{mac.get('adaptive_mode_switches')} (gate: >= 1) "
                     "— the traffic-aware controller must engage")
            mac_gate(mac.get("loss0_identical", False),
                     "mac_ablation loss0_identical — the reliability "
                     "layer at lossPct=0 may not move a simulated "
                     "cycle")
            mac_gate(mac.get("all_delivered_or_reported", False),
                     "mac_ablation all_delivered_or_reported — lossy "
                     "kernels must terminate with every drop "
                     "retransmitted or reported as a give-up")
            mac_gate(mac.get("lossy_drops", 0) >= 1,
                     f"mac_ablation lossy_drops = "
                     f"{mac.get('lossy_drops')} (gate: >= 1) — the "
                     "loss model must actually drop packets")
            mac_gate(mac.get("burst_identity_off", False),
                     "mac_ablation burst_identity_off — a disabled "
                     "Gilbert–Elliott chain may not move a simulated "
                     "cycle")
            mac_gate(mac.get("bursty_drops", 0) >= 1,
                     f"mac_ablation bursty_drops = "
                     f"{mac.get('bursty_drops')} (gate: >= 1) — the "
                     "burst chain must actually drop packets")
            mac_gate(mac.get("burst_vs_iid_differs", False),
                     "mac_ablation burst_vs_iid_differs — equal-mean "
                     "bursty loss must be distinguishable from i.i.d. "
                     "loss")

        mc = sweep.get("multichip")
        if mc is None:
            failures.append(f"missing 'multichip' record in "
                            f"{sweep_path}")
        else:
            def mc_gate(cond, line):
                checks.append(line)
                if not cond:
                    failures.append(f"FAIL {line}")

            mc_gate(mc.get("results_identical", False),
                    "multichip results_identical — the chip grid must "
                    "merge identically at any thread count")
            mc_gate(mc.get("all_completed", False),
                    "multichip all_completed — no tiling may deadlock "
                    "a workload across the bridge")
            mc_gate(mc.get("total_cores_max", 0) >= 256,
                    f"multichip total_cores_max = "
                    f"{mc.get('total_cores_max')} (gate: >= 256) — the "
                    "scale-out grid must reach kilocore territory")
            intra = mc.get("intra_cycles_per_barrier", 0.0)
            inter = mc.get("inter_cycles_per_barrier", 0.0)
            mc_gate(inter > intra > 0,
                    f"multichip sync cost: inter = {inter} > intra = "
                    f"{intra} cycles/barrier — the bridge latency must "
                    "be visible in cross-chip synchronization")
            mc_gate(mc.get("bridge_frames", 0) >= 1,
                    f"multichip bridge_frames = "
                    f"{mc.get('bridge_frames')} (gate: >= 1) — global "
                    "BM traffic must actually cross the bridge")
            mc_gate(mc.get("bridge_retries", 0) >= 1,
                    f"multichip bridge_retries = "
                    f"{mc.get('bridge_retries')} (gate: >= 1) — the "
                    "lossy bridge's retry machinery must engage")
            mc_gate(mc.get("bridge_books_balance", False),
                    "multichip bridge_books_balance — every bridge "
                    "drop must be answered by exactly one timeout and "
                    "a retransmission or give-up")
            mc_gate(mc.get("bridge_loss_identity", False),
                    "multichip bridge_loss_identity — reliability "
                    "knobs on a loss-free bridge may not move a "
                    "simulated cycle")
            mc_gate(mc.get("channel_profile_differs", False),
                    "multichip channel_profile_differs — a per-slot "
                    "loss profile step must visibly shift the run")

        svc = sweep.get("service")
        if svc is None:
            failures.append(f"missing 'service' record in "
                            f"{sweep_path}")
        else:
            def svc_gate(cond, line):
                checks.append(line)
                if not cond:
                    failures.append(f"FAIL {line}")

            svc_gate(svc.get("service_identity", False),
                     "service service_identity — cold, warm and "
                     "sharded batches must be bit-identical to a "
                     "serial uncached run")
            svc_gate(svc.get("cache_hits", 0) >=
                     svc.get("duplicates", 1),
                     f"service cache_hits = {svc.get('cache_hits')} "
                     f"(gate: >= duplicates = "
                     f"{svc.get('duplicates')}) — every duplicate "
                     "must be answered by the result cache")
            svc_gate(svc.get("warm_simulated", -1) == 0,
                     f"service warm_simulated = "
                     f"{svc.get('warm_simulated')} (gate: == 0) — a "
                     "warm batch may not simulate anything")
            speedup = svc.get("warm_speedup", 0.0)
            svc_gate(speedup >= 2.0,
                     f"service warm_speedup = {speedup} (gate: >= "
                     "2.0) — answering from the cache must clearly "
                     "beat re-simulating")
            svc_gate(svc.get("warm_from_disk_identical", False),
                     "service warm_from_disk_identical — a cache "
                     "spilled to disk and reloaded into a fresh "
                     "service must answer the batch without "
                     "simulating, bit-identical to the reference")
            svc_gate(svc.get("salvaged_prefix_hits", 0) >= 1,
                     f"service salvaged_prefix_hits = "
                     f"{svc.get('salvaged_prefix_hits')} (gate: >= 1) "
                     "— a truncated cache file must salvage its valid "
                     "prefix and serve those points warm")

    for line in checks:
        print(" ", line)
    if failures:
        print("\n".join(failures), file=sys.stderr)
        return 1
    print(f"all {len(checks)} bench gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
