/**
 * @file
 * Regenerates Figure 10: speedup of Baseline+, WiSyncNoT and WiSync
 * over Baseline for the 26 PARSEC + SPLASH-2 applications at 64
 * cores, plus the arithmetic and geometric means. Expected shape
 * (paper): barrier-storm apps (streamcluster, ocean) and lock-bound
 * apps (raytrace, radiosity) gain several-fold; most apps are
 * sync-light and sit near 1.0; WiSync geomean ~1.2 over Baseline and
 * ~1.1 over Baseline+.
 *
 * The (app x kind) grid runs through ParallelSweep; rows are printed
 * from the merged results in suite order.
 */

#include <array>
#include <iostream>
#include <vector>

#include "harness/parallel_sweep.hh"
#include "harness/report.hh"
#include "workloads/apps.hh"

using namespace wisync;

int
main()
{
    using core::ConfigKind;
    const std::uint32_t cores =
        harness::sweepMode() == harness::SweepMode::Quick ? 16 : 64;

    const std::array<ConfigKind, 4> kinds = {
        ConfigKind::Baseline, ConfigKind::BaselinePlus,
        ConfigKind::WiSyncNoT, ConfigKind::WiSync};

    harness::ParallelSweep sweep;
    struct Row
    {
        const workloads::AppProfile *app;
        std::array<std::size_t, 4> idx;
    };
    std::vector<Row> rows;
    for (const auto &app : workloads::appSuite()) {
        Row row{&app, {}};
        for (std::size_t k = 0; k < kinds.size(); ++k) {
            row.idx[k] = sweep.add(
                core::MachineConfig::make(kinds[k], cores),
                [&app](core::Machine &m) {
                    return workloads::runAppOn(app, m);
                });
        }
        rows.push_back(row);
    }
    const auto results = sweep.run();

    harness::TextTable fig(
        "Figure 10: speedup over Baseline, " + std::to_string(cores) +
        " cores (PARSEC + SPLASH-2)");
    fig.header({"App", "Baseline+", "WiSyncNoT", "WiSync"});

    std::vector<double> sp_plus, sp_not, sp_full;
    for (const auto &row : rows) {
        const double b =
            static_cast<double>(results[row.idx[0]].cycles);
        sp_plus.push_back(
            b / static_cast<double>(results[row.idx[1]].cycles));
        sp_not.push_back(
            b / static_cast<double>(results[row.idx[2]].cycles));
        sp_full.push_back(
            b / static_cast<double>(results[row.idx[3]].cycles));
        fig.row({row.app->name, harness::fmt(sp_plus.back()),
                 harness::fmt(sp_not.back()),
                 harness::fmt(sp_full.back())});
    }
    fig.row({"mean", harness::fmt(harness::mean(sp_plus)),
             harness::fmt(harness::mean(sp_not)),
             harness::fmt(harness::mean(sp_full))});
    fig.row({"geoMean", harness::fmt(harness::geomean(sp_plus)),
             harness::fmt(harness::geomean(sp_not)),
             harness::fmt(harness::geomean(sp_full))});
    fig.print(std::cout);

    std::cout << "WiSync vs Baseline+ geomean: "
              << harness::fmt(harness::geomean(sp_full) /
                              harness::geomean(sp_plus))
              << " (paper: 1.12)\n";
    return 0;
}
