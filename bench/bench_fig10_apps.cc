/**
 * @file
 * Regenerates Figure 10: speedup of Baseline+, WiSyncNoT and WiSync
 * over Baseline for the 26 PARSEC + SPLASH-2 applications at 64
 * cores, plus the arithmetic and geometric means. Expected shape
 * (paper): barrier-storm apps (streamcluster, ocean) and lock-bound
 * apps (raytrace, radiosity) gain several-fold; most apps are
 * sync-light and sit near 1.0; WiSync geomean ~1.2 over Baseline and
 * ~1.1 over Baseline+.
 */

#include <iostream>
#include <vector>

#include "harness/report.hh"
#include "harness/sweep.hh"
#include "workloads/apps.hh"

using namespace wisync;

int
main()
{
    using core::ConfigKind;
    harness::SweepHarness machines;
    const std::uint32_t cores =
        harness::sweepMode() == harness::SweepMode::Quick ? 16 : 64;

    harness::TextTable fig(
        "Figure 10: speedup over Baseline, " + std::to_string(cores) +
        " cores (PARSEC + SPLASH-2)");
    fig.header({"App", "Baseline+", "WiSyncNoT", "WiSync"});

    std::vector<double> sp_plus, sp_not, sp_full;
    for (const auto &app : workloads::appSuite()) {
        auto run = [&](ConfigKind kind) {
            return workloads::runAppOn(
                app,
                machines.acquire(core::MachineConfig::make(kind, cores)));
        };
        const auto base = run(ConfigKind::Baseline);
        const auto plus = run(ConfigKind::BaselinePlus);
        const auto not_ = run(ConfigKind::WiSyncNoT);
        const auto full = run(ConfigKind::WiSync);
        const double b = static_cast<double>(base.cycles);
        sp_plus.push_back(b / static_cast<double>(plus.cycles));
        sp_not.push_back(b / static_cast<double>(not_.cycles));
        sp_full.push_back(b / static_cast<double>(full.cycles));
        fig.row({app.name, harness::fmt(sp_plus.back()),
                 harness::fmt(sp_not.back()),
                 harness::fmt(sp_full.back())});
    }
    fig.row({"mean", harness::fmt(harness::mean(sp_plus)),
             harness::fmt(harness::mean(sp_not)),
             harness::fmt(harness::mean(sp_full))});
    fig.row({"geoMean", harness::fmt(harness::geomean(sp_plus)),
             harness::fmt(harness::geomean(sp_not)),
             harness::fmt(harness::geomean(sp_full))});
    fig.print(std::cout);

    std::cout << "WiSync vs Baseline+ geomean: "
              << harness::fmt(harness::geomean(sp_full) /
                              harness::geomean(sp_plus))
              << " (paper: 1.12)\n";
    return 0;
}
