/**
 * @file
 * Ablation of the collision-resolution policy (§5.3).
 *
 * The paper chooses exponential backoff with window [0, 2^i - 1] and
 * leaves adaptive policies as future work. This bench sweeps the
 * maximum backoff exponent on the Data-channel barrier (WiSyncNoT,
 * where barrier-arrival bursts collide): a tiny window thrashes the
 * channel with repeat collisions, while an over-large window adds
 * idle latency after bursts.
 *
 * The six window sizes form a ParallelSweep grid (the per-point
 * MachineConfig carries the ablated maxBackoffExp).
 */

#include <iostream>
#include <vector>

#include "harness/parallel_sweep.hh"
#include "harness/report.hh"
#include "workloads/tight_loop.hh"

using namespace wisync;

int
main()
{
    const std::uint32_t cores =
        harness::sweepMode() == harness::SweepMode::Quick ? 16 : 64;
    workloads::TightLoopParams params;
    params.iterations = 10;
    // A degenerate window (max exp 1 at 64 colliding senders) can
    // livelock; cap the run so the bench reports it instead.
    params.runLimit = 3'000'000;

    const std::vector<std::uint32_t> max_exps = {1, 2, 4, 6, 10, 14};

    harness::ParallelSweep sweep;
    for (const std::uint32_t max_exp : max_exps) {
        auto cfg = core::MachineConfig::make(core::ConfigKind::WiSyncNoT,
                                             cores);
        cfg.wireless.maxBackoffExp = max_exp;
        sweep.add(cfg, [params](core::Machine &m) {
            return workloads::runTightLoopOn(m, params);
        });
    }
    const auto results = sweep.run();

    harness::TextTable tab(
        "Ablation: MAC backoff window vs TightLoop (WiSyncNoT, " +
        std::to_string(cores) + " cores)");
    tab.header({"Max backoff exp", "Cycles/iter", "Collisions"});
    for (std::size_t i = 0; i < max_exps.size(); ++i) {
        const auto &r = results[i];
        tab.row({std::to_string(max_exps[i]),
                 r.completed
                     ? harness::fmt(static_cast<double>(r.cycles) /
                                        static_cast<double>(r.operations),
                                    0)
                     : std::string("livelock (>3M cycles)"),
                 std::to_string(r.collisions)});
    }
    tab.print(std::cout);
    return 0;
}
