/**
 * @file
 * Ablation of the collision-resolution policy (§5.3).
 *
 * The paper chooses exponential backoff with window [0, 2^i - 1] and
 * leaves adaptive policies as future work. This bench sweeps the
 * maximum backoff exponent on the Data-channel barrier (WiSyncNoT,
 * where barrier-arrival bursts collide): a tiny window thrashes the
 * channel with repeat collisions, while an over-large window adds
 * idle latency after bursts.
 */

#include <iostream>

#include "harness/report.hh"
#include "harness/sweep.hh"
#include "workloads/tight_loop.hh"

using namespace wisync;

int
main()
{
    harness::SweepHarness machines;
    const std::uint32_t cores =
        harness::sweepMode() == harness::SweepMode::Quick ? 16 : 64;
    workloads::TightLoopParams params;
    params.iterations = 10;
    // A degenerate window (max exp 1 at 64 colliding senders) can
    // livelock; cap the run so the bench reports it instead.
    params.runLimit = 3'000'000;

    harness::TextTable tab(
        "Ablation: MAC backoff window vs TightLoop (WiSyncNoT, " +
        std::to_string(cores) + " cores)");
    tab.header({"Max backoff exp", "Cycles/iter", "Collisions"});
    for (const std::uint32_t max_exp : {1u, 2u, 4u, 6u, 10u, 14u}) {
        auto cfg = core::MachineConfig::make(core::ConfigKind::WiSyncNoT,
                                             cores);
        cfg.wireless.maxBackoffExp = max_exp;
        const auto r =
            workloads::runTightLoopOn(machines.acquire(cfg), params);
        tab.row({std::to_string(max_exp),
                 r.completed
                     ? harness::fmt(static_cast<double>(r.cycles) /
                                        static_cast<double>(r.operations),
                                    0)
                     : std::string("livelock (>3M cycles)"),
                 std::to_string(r.collisions)});
    }
    tab.print(std::cout);
    return 0;
}
