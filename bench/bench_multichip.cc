/**
 * @file
 * Multi-chip scale-out: speedup vs chip count at a fixed machine size.
 *
 * The kilocore question the chip grid answers: with the total core
 * count held constant, does tiling the machine into more chips — each
 * with its own wireless domain under the FrequencyPlan, coupled by the
 * serialized ChipBridge — pay for the bridge latency it introduces?
 * Three workloads bracket the answer on both wireless kinds:
 *
 *  - BarrierStorm (TightLoop, zero-element array): nothing but
 *    machine-wide barriers. The hierarchical MultiChipBarrier's
 *    global phase rides the bridge every round — the worst case.
 *  - TightLoop (50-element array): the paper's Fig. 7 kernel, where
 *    per-chip channels absorb the broadcast storm between barriers.
 *  - CAS-LIFO: cross-chip RMW contention; stale-replica AFB aborts
 *    measure the coherence cost directly.
 *
 * The grid (kind x workload x chip count, 256 cores total) runs
 * through harness::ParallelSweep twice — serially and at the
 * environment's worker count — and must merge bit-identically,
 * bridge and stale-abort telemetry included. Two extra 64-core
 * WiSync barrier-storm points (1 chip vs 4) measure the intra- vs
 * inter-chip synchronization cost per barrier: the bridge's latency
 * must be visible (inter > intra), or the bridge model is vacuous.
 *
 * Reliability rows ride the same sweep: the 64-core storm again at 2
 * and 4 chips over a 20% lossy bridge (retry/give-up counters must
 * engage and the drop books must balance), a loss-free bridge with
 * odd reliability knobs that must stay bit-identical to the plain
 * 4-chip point, and a flat-vs-stepped per-channel loss profile pair
 * whose 8 dB slot step must visibly shift the run.
 * bench/check_bench.py gates the record ("multichip" in
 * BENCH_sweep.json): identity, completion, >= 256 cores swept,
 * inter > intra, frames actually crossing the bridge, bridge retries
 * engaging, the ideal-bridge identity and the profile sensitivity.
 *
 * With --json the bench emits only the machine-readable record (for
 * bench/run_bench.sh --sweep); by default it prints the scale table.
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/parallel_sweep.hh"
#include "harness/report.hh"
#include "workloads/cas_kernels.hh"
#include "workloads/tight_loop.hh"

using namespace wisync;

namespace {

struct Point
{
    core::ConfigKind kind;
    const char *workload;
    std::uint32_t chips;
};

} // namespace

int
main(int argc, char **argv)
{
    const bool json_only =
        argc > 1 && std::strcmp(argv[1], "--json") == 0;
    const bool quick = harness::sweepMode() == harness::SweepMode::Quick;

    // The acceptance floor is a >= 256-core machine even in quick
    // mode; quick only trims the chip axis and the iteration counts.
    const std::uint32_t total_cores = 256;
    const std::vector<std::uint32_t> chip_counts =
        quick ? std::vector<std::uint32_t>{1, 4}
              : std::vector<std::uint32_t>{1, 2, 4};
    const std::vector<core::ConfigKind> kinds = {
        core::ConfigKind::WiSync, core::ConfigKind::WiSyncNoT};

    workloads::TightLoopParams storm;
    storm.iterations = quick ? 4 : 8;
    storm.arrayElems = 0;
    storm.runLimit = 20'000'000;
    workloads::TightLoopParams tight;
    tight.iterations = quick ? 4 : 8;
    tight.runLimit = 20'000'000;
    workloads::CasKernelParams cas;
    cas.criticalSectionInstr = 128;
    cas.duration = quick ? 20'000 : 60'000;

    harness::ParallelSweep sweep;
    std::vector<Point> grid;
    for (const auto kind : kinds) {
        for (const auto chips : chip_counts) {
            auto cfg = core::MachineConfig::make(kind, total_cores);
            cfg.numChips = chips;
            grid.push_back({kind, "BarrierStorm", chips});
            sweep.add(cfg, [storm](core::Machine &m) {
                return workloads::runTightLoopOn(m, storm);
            });
            grid.push_back({kind, "TightLoop", chips});
            sweep.add(cfg, [tight](core::Machine &m) {
                return workloads::runTightLoopOn(m, tight);
            });
            grid.push_back({kind, "CAS-LIFO", chips});
            sweep.add(cfg, [cas](core::Machine &m) {
                return workloads::runCasKernelOn(workloads::CasKernel::Lifo,
                                                 m, cas);
            });
        }
    }

    // Intra- vs inter-chip synchronization cost: the same 64-core
    // WiSync barrier storm, once on one die (tone barrier) and once
    // tiled over 4 chips (MultiChipBarrier's global phase crosses the
    // bridge every round). Appended to the same sweep so the identity
    // leg covers these points too.
    const std::size_t intra_idx = grid.size();
    for (const std::uint32_t chips : {1u, 4u}) {
        auto cfg = core::MachineConfig::make(core::ConfigKind::WiSync, 64);
        cfg.numChips = chips;
        grid.push_back({core::ConfigKind::WiSync, "SyncCost", chips});
        sweep.add(cfg, [storm](core::Machine &m) {
            return workloads::runTightLoopOn(m, storm);
        });
    }

    // Bridge loss at 2 and 4 chips: the same 64-core WiSync storm with
    // a 20% lossy bridge. Every global barrier phase rides the
    // retrying link, so the bridge reliability counters must engage
    // (bridge_retries gate) while the run still completes coherently.
    const std::size_t bridge_loss_idx = grid.size();
    for (const std::uint32_t chips : {2u, 4u}) {
        auto cfg = core::MachineConfig::make(core::ConfigKind::WiSync, 64);
        cfg.numChips = chips;
        cfg.bridge.lossPct = 20.0;
        grid.push_back({core::ConfigKind::WiSync, "BridgeLoss", chips});
        sweep.add(cfg, [storm](core::Machine &m) {
            return workloads::runTightLoopOn(m, storm);
        });
    }

    // Ideal-bridge identity twin: odd reliability knobs on a loss-free
    // bridge are dead state — the point must be bit-identical to the
    // 4-chip SyncCost cell (bridge_loss_identity gate).
    const std::size_t bridge_twin_idx = grid.size();
    {
        auto cfg = core::MachineConfig::make(core::ConfigKind::WiSync, 64);
        cfg.numChips = 4;
        cfg.bridge.ackTimeoutCycles = 17;
        cfg.bridge.maxRetries = 2;
        cfg.bridge.retryBackoffMaxExp = 1;
        grid.push_back({core::ConfigKind::WiSync, "BridgeTwin", 4});
        sweep.add(cfg, [storm](core::Machine &m) {
            return workloads::runTightLoopOn(m, storm);
        });
    }

    // Per-channel loss profiles: 32 cores tiled over 4 chips sharing
    // 2 spectrum slots at marginal transmit power, flat spectrum vs
    // an 8 dB per-slot step. The per-chip dies are small enough that
    // the stepped slot stays usable (lossy, not dead); the profile
    // moves real loss into the high slots, so the two points must
    // diverge (channel_profile_differs gate).
    const std::size_t profile_idx = grid.size();
    for (const double step : {0.0, 8.0}) {
        auto cfg = core::MachineConfig::make(core::ConfigKind::WiSync, 32);
        cfg.numChips = 4;
        cfg.wireless.spectrumSlots = 2;
        cfg.wireless.berFromSnr = true;
        cfg.wireless.txPowerDbm = 0.0;
        cfg.wireless.channelLossStepDb = step;
        grid.push_back({core::ConfigKind::WiSync,
                        step == 0.0 ? "ProfileFlat" : "ProfileStep", 4});
        sweep.add(cfg, [tight](core::Machine &m) {
            return workloads::runTightLoopOn(m, tight);
        });
    }

    const auto serial = sweep.run(1);
    const unsigned threads = harness::ParallelSweep::threads();
    const auto parallel = sweep.run(threads);
    bool identical = serial.size() == parallel.size();
    for (std::size_t i = 0; identical && i < serial.size(); ++i)
        identical = workloads::bitIdentical(serial[i], parallel[i]);

    bool all_completed = true;
    std::uint64_t bridge_frames = 0, stale_aborts = 0;
    std::uint64_t bridge_drops = 0, bridge_retries = 0, bridge_giveups = 0;
    bool bridge_books_balance = true;
    for (const auto &r : serial) {
        all_completed = all_completed && r.completed;
        bridge_frames += r.bridgeFrames;
        stale_aborts += r.staleRmwAborts;
        bridge_drops += r.bridgeDrops;
        bridge_retries += r.bridgeRetransmits;
        bridge_giveups += r.bridgeGiveups;
        // Drop-accounting invariant, point by point: every corrupted
        // serialization times out exactly once and is either
        // retransmitted or given up on.
        bridge_books_balance =
            bridge_books_balance && r.bridgeDrops == r.bridgeAckTimeouts &&
            r.bridgeDrops == r.bridgeRetransmits + r.bridgeGiveups;
    }

    const double intra_per_barrier =
        static_cast<double>(serial[intra_idx].cycles) / storm.iterations;
    const double inter_per_barrier =
        static_cast<double>(serial[intra_idx + 1].cycles) /
        storm.iterations;

    const bool bridge_loss_identity = workloads::bitIdentical(
        serial[bridge_twin_idx], serial[intra_idx + 1]);
    const bool channel_profile_differs =
        serial[profile_idx].completed && serial[profile_idx + 1].completed &&
        !workloads::bitIdentical(serial[profile_idx],
                                 serial[profile_idx + 1]);

    const bool ok = identical && all_completed &&
                    inter_per_barrier > intra_per_barrier &&
                    bridge_drops >= 1 && bridge_retries >= 1 &&
                    bridge_books_balance && bridge_loss_identity &&
                    channel_profile_differs;

    if (json_only) {
        std::printf(
            "{\"grid\": \"multichip\", \"points\": %zu, "
            "\"threads\": %u, \"results_identical\": %s, "
            "\"all_completed\": %s, \"total_cores_max\": %u, "
            "\"intra_cycles_per_barrier\": %.2f, "
            "\"inter_cycles_per_barrier\": %.2f, "
            "\"bridge_frames\": %llu, \"stale_rmw_aborts\": %llu, "
            "\"bridge_drops\": %llu, \"bridge_retries\": %llu, "
            "\"bridge_giveups\": %llu, \"bridge_books_balance\": %s, "
            "\"bridge_loss_identity\": %s, "
            "\"channel_profile_differs\": %s}\n",
            grid.size(), threads, identical ? "true" : "false",
            all_completed ? "true" : "false", total_cores,
            intra_per_barrier, inter_per_barrier,
            static_cast<unsigned long long>(bridge_frames),
            static_cast<unsigned long long>(stale_aborts),
            static_cast<unsigned long long>(bridge_drops),
            static_cast<unsigned long long>(bridge_retries),
            static_cast<unsigned long long>(bridge_giveups),
            bridge_books_balance ? "true" : "false",
            bridge_loss_identity ? "true" : "false",
            channel_profile_differs ? "true" : "false");
        return ok ? 0 : 1;
    }

    harness::TextTable tab("Multi-chip scale-out (256 cores total, "
                           "chips x workload)");
    tab.header({"Config", "Workload", "Chips", "Cycles", "Speedup",
                "Bridge frames", "Stale aborts"});
    for (std::size_t i = 0; i < intra_idx; ++i) {
        const auto &r = serial[i];
        // Speedup vs the 1-chip tiling of the same (kind, workload):
        // chip_counts always leads with 1, so that point is the first
        // matching entry in the grid.
        std::size_t base = 0;
        while (grid[base].kind != grid[i].kind ||
               std::strcmp(grid[base].workload, grid[i].workload) != 0)
            ++base;
        const double speedup =
            r.cycles == 0 ? 0.0
                          : static_cast<double>(serial[base].cycles) /
                                static_cast<double>(r.cycles);
        tab.row({toString(grid[i].kind), grid[i].workload,
                 std::to_string(grid[i].chips),
                 r.completed ? std::to_string(r.cycles)
                             : std::string("run limit"),
                 harness::fmt(speedup, 2) + "x",
                 std::to_string(r.bridgeFrames),
                 std::to_string(r.staleRmwAborts)});
    }
    tab.print(std::cout);
    std::printf("sync cost per barrier (64-core WiSync storm): "
                "%.1f cycles on one die, %.1f across 4 chips\n",
                intra_per_barrier, inter_per_barrier);

    harness::TextTable rel("Bridge loss and channel profiles");
    rel.header({"Point", "Chips", "Cycles", "Bridge drops", "Retries",
                "Give-ups", "Wireless drops"});
    for (std::size_t i = bridge_loss_idx; i < grid.size(); ++i) {
        const auto &r = serial[i];
        rel.row({grid[i].workload, std::to_string(grid[i].chips),
                 r.completed ? std::to_string(r.cycles)
                             : std::string("run limit"),
                 std::to_string(r.bridgeDrops),
                 std::to_string(r.bridgeRetransmits),
                 std::to_string(r.bridgeGiveups),
                 std::to_string(r.wirelessDrops)});
    }
    rel.print(std::cout);
    std::cout << (bridge_books_balance
                      ? "bridge drop accounting balances\n"
                      : "ACCOUNTING VIOLATION: bridge drops != "
                        "timeouts / retries + give-ups\n");
    std::cout << (bridge_loss_identity
                      ? "ideal-bridge reliability knobs are inert\n"
                      : "IDENTITY VIOLATION: loss-free bridge knobs "
                        "perturbed the run\n");
    std::cout << (channel_profile_differs
                      ? "per-channel loss profile shifts the run\n"
                      : "SENSITIVITY VIOLATION: 8 dB profile step "
                        "was invisible\n");
    std::cout << (identical ? "serial/parallel results identical\n"
                            : "DETERMINISM VIOLATION: serial and "
                              "parallel results differ\n");
    return ok ? 0 : 1;
}
