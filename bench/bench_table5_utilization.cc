/**
 * @file
 * Regenerates Table 5: Data-channel utilization (% of total cycles)
 * under WiSyncNoT and WiSync for the most demanding applications and
 * the geometric mean over the whole suite. Expected shape (paper):
 * all utilizations are low (<= a few %), WiSync strictly below
 * WiSyncNoT because the Tone channel absorbs the barrier traffic.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "harness/report.hh"
#include "workloads/apps.hh"

using namespace wisync;

int
main()
{
    using core::ConfigKind;
    const std::uint32_t cores =
        harness::sweepMode() == harness::SweepMode::Quick ? 16 : 64;

    // The paper's "most demanding" columns.
    const std::vector<std::string> demanding = {
        "streamcluster", "radiosity", "water-ns", "fluidanimate",
        "raytrace",      "ocean-c",   "ocean-nc"};

    harness::TextTable t5("Table 5: Data-channel utilization (% cycles), " +
                          std::to_string(cores) + " cores");
    t5.header({"App", "WiSyncNoT %", "WiSync %"});

    std::vector<double> util_not, util_full;
    std::vector<std::pair<std::string, std::pair<double, double>>> rows;
    for (const auto &app : workloads::appSuite()) {
        const auto not_ =
            workloads::runApp(app, ConfigKind::WiSyncNoT, cores);
        const auto full =
            workloads::runApp(app, ConfigKind::WiSync, cores);
        const double u_not = not_.dataChannelUtilisation * 100.0;
        const double u_full = full.dataChannelUtilisation * 100.0;
        // Geomean over the suite (guard zero with a tiny floor, as a
        // geometric mean of utilizations needs positive values).
        util_not.push_back(std::max(u_not, 0.01));
        util_full.push_back(std::max(u_full, 0.01));
        rows.emplace_back(app.name, std::make_pair(u_not, u_full));
    }
    for (const auto &name : demanding) {
        for (const auto &[app, u] : rows)
            if (app == name)
                t5.row({app, harness::fmt(u.first, 1),
                        harness::fmt(u.second, 1)});
    }
    t5.row({"geoMean(all)", harness::fmt(harness::geomean(util_not), 1),
            harness::fmt(harness::geomean(util_full), 1)});
    t5.print(std::cout);
    return 0;
}
