#!/usr/bin/env bash
#
# Run the kernel micro-benchmarks (plus, with --all, the paper-figure
# benches) in JSON mode and merge the results into BENCH_kernel.json at
# the repository root. The file seeds the performance trajectory: the
# ratio gates in bench/check_bench.py (run via --check, wired into CI)
# compare same-process A/B pairs and deterministic counters, which are
# robust on shared runners where absolute numbers are not.
#
# --sweep times the figure-bench sweeps twice — once with machine
# reuse disabled (WISYNC_NO_REUSE=1, one Machine build per sweep
# point) and once with the SweepHarness reusing machines via
# Machine::reset — and records the same-session A/B to
# BENCH_sweep.json. CPU (user) time is measured, not wall time: the
# benches are single-threaded, and CPU time is robust against noisy
# neighbours on shared runners. With --baseline-dir pointing at a
# build of an older commit, each bench also gets a baseline leg (the
# full before/after effect of reuse + frame pool + build cost).
#
# Usage: bench/run_bench.sh [--build-dir DIR] [--out FILE] [--all]
#                           [--min-time SEC] [--check]
#                           [--sweep [--sweep-out FILE]
#                            [--baseline-dir DIR] [--baseline-name N]]

set -euo pipefail

BUILD_DIR=build
OUT=BENCH_kernel.json
SWEEP_OUT=BENCH_sweep.json
ALL=0
CHECK=0
SWEEP=0
MIN_TIME=0.5
BASELINE_DIR=""
BASELINE_NAME=baseline
while [[ $# -gt 0 ]]; do
    case "$1" in
      --build-dir) BUILD_DIR=$2; shift 2 ;;
      --out) OUT=$2; shift 2 ;;
      --sweep-out) SWEEP_OUT=$2; shift 2 ;;
      --all) ALL=1; shift ;;
      --check) CHECK=1; shift ;;
      --sweep) SWEEP=1; shift ;;
      --min-time) MIN_TIME=$2; shift 2 ;;
      --baseline-dir) BASELINE_DIR=$2; shift 2 ;;
      --baseline-name) BASELINE_NAME=$2; shift 2 ;;
      *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
done

REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$REPO_ROOT"

require_exe() {
    if [[ ! -x $1 ]]; then
        echo "missing $1 — build first: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
        exit 1
    fi
}

if [[ $SWEEP -eq 1 ]]; then
    SWEEP_BENCHES=(bench_fig7_tightloop bench_fig8_livermore bench_fig9_cas
                   bench_fig10_apps bench_fig11_sensitivity
                   bench_ablation_backoff bench_ablation_bulk)
    MODE=${WISYNC_QUICK:+quick}
    MODE=${MODE:-${WISYNC_FULL:+full}}
    MODE=${MODE:-default}
    # One leg: best-of-3 CPU (user) milliseconds of one full sweep.
    cpu_ms() {
        local exe=$1
        shift
        local best=""
        local rep t
        for rep in 1 2 3; do
            t=$( { env "$@" bash -c \
                "TIMEFORMAT=%U; time \"$exe\" >/dev/null 2>&1"; } 2>&1 |
                tail -1 )
            t=$(python3 -c "print(int(float('$t') * 1000))")
            if [[ -z $best || $t -lt $best ]]; then best=$t; fi
        done
        echo "$best"
    }

    ROWS=""
    for b in "${SWEEP_BENCHES[@]}"; do
        exe="$BUILD_DIR/bench/$b"
        require_exe "$exe"
        echo "== $b (A: fresh machines)"
        fresh=$(cpu_ms "$exe" WISYNC_NO_REUSE=1)
        echo "== $b (B: reset reuse)"
        reuse=$(cpu_ms "$exe")
        base=-1
        if [[ -n $BASELINE_DIR ]]; then
            bexe="$BASELINE_DIR/bench/$b"
            require_exe "$bexe"
            echo "== $b (C: $BASELINE_NAME)"
            base=$(cpu_ms "$bexe")
        fi
        ROWS+="$b $fresh $reuse $base"$'\n'
    done
    # Same-process 1-thread vs N-thread wall-clock A/B of the parallel
    # driver on the TightLoop grid (results verified identical inside
    # the binary; nonzero exit = determinism violation).
    PAR_EXE="$BUILD_DIR/bench/bench_sweep_parallel"
    require_exe "$PAR_EXE"
    echo "== bench_sweep_parallel (1 thread vs N threads)"
    PARALLEL_JSON=$("$PAR_EXE")
    echo "   $PARALLEL_JSON"
    # MAC-protocol ablation record: serial-vs-parallel identity of the
    # protocol x workload grid plus the deterministic MAC counters
    # (token collisions, rotations, adaptive switches) that
    # check_bench.py gates.
    MAC_EXE="$BUILD_DIR/bench/bench_ablation_mac"
    require_exe "$MAC_EXE"
    echo "== bench_ablation_mac (protocol grid, serial vs N threads)"
    MAC_JSON=$("$MAC_EXE" --json)
    echo "   $MAC_JSON"
    # Multi-chip scale-out record: speedup vs chip count at 256 cores,
    # serial-vs-parallel identity, and the intra- vs inter-chip
    # barrier-cost measurement check_bench.py gates.
    MC_EXE="$BUILD_DIR/bench/bench_multichip"
    require_exe "$MC_EXE"
    echo "== bench_multichip (chip grid, serial vs N threads)"
    MC_JSON=$("$MC_EXE" --json)
    echo "   $MC_JSON"
    # Sweep-service record: cold vs warm batch on a duplicate-heavy
    # grid, identity vs a serial uncached run verified in-process.
    SVC_EXE="$BUILD_DIR/bench/bench_service"
    require_exe "$SVC_EXE"
    echo "== bench_service (cold vs warm duplicate-heavy batch)"
    SVC_JSON=$("$SVC_EXE" --json)
    echo "   $SVC_JSON"
    ROWFILE=$(mktemp)
    trap 'rm -f "$ROWFILE"' EXIT
    printf '%s' "$ROWS" >"$ROWFILE"
    python3 - "$SWEEP_OUT" "$MODE" "$ROWFILE" "$BASELINE_NAME" \
        "$PARALLEL_JSON" "$MAC_JSON" "$MC_JSON" "$SVC_JSON" <<'EOF'
import json, sys
out, mode, name = sys.argv[1], sys.argv[2], sys.argv[4]
parallel = json.loads(sys.argv[5])
mac = json.loads(sys.argv[6])
multichip = json.loads(sys.argv[7])
serviced = json.loads(sys.argv[8])
rows = []
for line in open(sys.argv[3]):
    parts = line.split()
    if len(parts) != 4:
        continue
    bench, fresh, reuse, base = parts[0], int(parts[1]), int(parts[2]), \
        int(parts[3])
    row = {
        "name": bench,
        "fresh_cpu_seconds": round(fresh / 1e3, 3),
        "reuse_cpu_seconds": round(reuse / 1e3, 3),
        # null when either leg finished below timer resolution — a
        # ratio over an unmeasurable number is noise, not a speedup.
        "speedup_fresh_over_reuse":
            round(fresh / reuse, 2) if fresh > 0 and reuse > 0 else None,
    }
    if base >= 0:
        row[f"{name}_cpu_seconds"] = round(base / 1e3, 3)
        row[f"speedup_{name}_over_reuse"] = \
            round(base / reuse, 2) if base > 0 and reuse > 0 else None
    rows.append(row)
doc = {
    "sweep_mode": mode,
    "method": "best-of-3 CPU (user) seconds per full sweep, same "
              "session; fresh = WISYNC_NO_REUSE=1 (one Machine build "
              "per sweep point), reuse = SweepHarness + Machine::reset",
    "parallel_method": "same-process wall-clock seconds of one "
                       "TightLoop grid via ParallelSweep at 1 worker "
                       "vs WISYNC_SWEEP_THREADS workers, merged "
                       "results verified identical",
    "parallel": parallel,
    "mac_ablation_method": "MAC protocol x workload x cores grid "
                           "(BRS/token/fuzzy-token/adaptive on "
                           "WiSyncNoT) run serially and at "
                           "WISYNC_SWEEP_THREADS workers; merged "
                           "results (incl. MAC telemetry) verified "
                           "identical; counters are deterministic "
                           "simulation outputs",
    "mac_ablation": mac,
    "multichip_method": "kind x workload x chip-count grid at 256 "
                        "total cores (per-chip wireless domains under "
                        "the FrequencyPlan, ChipBridge coherence) run "
                        "serially and at WISYNC_SWEEP_THREADS workers; "
                        "merged results verified identical; the sync-"
                        "cost pair measures a 64-core barrier storm on "
                        "one die vs tiled over 4 chips",
    "multichip": multichip,
    "service_method": "duplicate-heavy batch (6 unique points x 4 "
                      "repeats) through SweepService: cold batch "
                      "(dedupe + fingerprint-keyed result cache, "
                      "WISYNC_SWEEP_THREADS workers) vs the same "
                      "batch warm; identity vs a serial uncached run "
                      "and a 2-way ShardPlanner split verified "
                      "in-process",
    "service": serviced,
    "benches": rows,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=1)
print(f"wrote {out}")
print(f"  parallel sweep: {parallel['serial_seconds']}s serial vs "
      f"{parallel['parallel_seconds']}s at {parallel['threads']} "
      f"threads ({parallel['sweep_parallel_speedup']}x)")
print(f"  mac ablation: {mac['points']} points, identical="
      f"{mac['results_identical']}, token_collisions="
      f"{mac['token_collisions']}, adaptive_switches="
      f"{mac['adaptive_mode_switches']}")
print(f"  lossy channel: {mac.get('lossy_points', 0)} points, "
      f"loss0_identical={mac.get('loss0_identical')}, "
      f"delivered_or_reported={mac.get('all_delivered_or_reported')}, "
      f"drops={mac.get('lossy_drops')}")
print(f"  multichip: {multichip['points']} points, identical="
      f"{multichip['results_identical']}, sync cost "
      f"{multichip['intra_cycles_per_barrier']} intra vs "
      f"{multichip['inter_cycles_per_barrier']} inter cycles/barrier, "
      f"bridge_frames={multichip['bridge_frames']}")
print(f"  service: {serviced['points']} points "
      f"({serviced['duplicates']} duplicates), identity="
      f"{serviced['service_identity']}, cache_hits="
      f"{serviced['cache_hits']}, warm speedup "
      f"{serviced['warm_speedup']}x")
for r in rows:
    extra = ""
    k = f"speedup_{name}_over_reuse"
    if k in r:
        extra = f", {r[k]}x vs {name}"
    print(f"  {r['name']}: {r['fresh_cpu_seconds']}s fresh vs "
          f"{r['reuse_cpu_seconds']}s reuse "
          f"({r['speedup_fresh_over_reuse']}x{extra})")
EOF
    exit 0
fi

BENCHES=(bench_micro_engine)
if [[ $ALL -eq 1 ]]; then
    BENCHES+=(bench_fig7_tightloop bench_fig8_livermore bench_fig9_cas
              bench_fig10_apps bench_fig11_sensitivity
              bench_ablation_backoff bench_ablation_bulk)
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

for b in "${BENCHES[@]}"; do
    exe="$BUILD_DIR/bench/$b"
    require_exe "$exe"
    echo "== $b"
    "$exe" --benchmark_format=json --benchmark_min_time="$MIN_TIME" \
        >"$TMP/$b.json"
done

# Merge: keep the context of the first file, concatenate benchmarks[].
python3 - "$OUT" "$TMP" <<'EOF'
import json, sys, glob, os
out, tmp = sys.argv[1], sys.argv[2]
merged = None
for path in sorted(glob.glob(os.path.join(tmp, "*.json"))):
    with open(path) as f:
        data = json.load(f)
    if merged is None:
        merged = data
    else:
        merged["benchmarks"].extend(data["benchmarks"])
with open(out, "w") as f:
    json.dump(merged, f, indent=1)
print(f"wrote {out} with {len(merged['benchmarks'])} benchmarks")
EOF

if [[ $CHECK -eq 1 ]]; then
    python3 bench/check_bench.py "$OUT"
fi
