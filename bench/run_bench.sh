#!/usr/bin/env bash
#
# Run the kernel micro-benchmarks (plus, with --all, the paper-figure
# benches) in JSON mode and merge the results into BENCH_kernel.json at
# the repository root. The file seeds the performance trajectory: diff
# items_per_second between commits to catch kernel regressions.
#
# Usage: bench/run_bench.sh [--build-dir DIR] [--out FILE] [--all]

set -euo pipefail

BUILD_DIR=build
OUT=BENCH_kernel.json
ALL=0
while [[ $# -gt 0 ]]; do
    case "$1" in
      --build-dir) BUILD_DIR=$2; shift 2 ;;
      --out) OUT=$2; shift 2 ;;
      --all) ALL=1; shift ;;
      *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
done

REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$REPO_ROOT"

BENCHES=(bench_micro_engine)
if [[ $ALL -eq 1 ]]; then
    BENCHES+=(bench_fig7_tightloop bench_fig8_livermore bench_fig9_cas
              bench_fig10_apps bench_fig11_sensitivity
              bench_ablation_backoff bench_ablation_bulk)
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

for b in "${BENCHES[@]}"; do
    exe="$BUILD_DIR/bench/$b"
    if [[ ! -x $exe ]]; then
        echo "missing $exe — build first: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
        exit 1
    fi
    echo "== $b"
    "$exe" --benchmark_format=json --benchmark_min_time=0.5 \
        >"$TMP/$b.json"
done

# Merge: keep the context of the first file, concatenate benchmarks[].
python3 - "$OUT" "$TMP" <<'EOF'
import json, sys, glob, os
out, tmp = sys.argv[1], sys.argv[2]
merged = None
for path in sorted(glob.glob(os.path.join(tmp, "*.json"))):
    with open(path) as f:
        data = json.load(f)
    if merged is None:
        merged = data
    else:
        merged["benchmarks"].extend(data["benchmarks"])
with open(out, "w") as f:
    json.dump(merged, f, indent=1)
print(f"wrote {out} with {len(merged['benchmarks'])} benchmarks")
EOF
