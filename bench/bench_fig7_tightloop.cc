/**
 * @file
 * Regenerates Figure 7: TightLoop execution time (cycles/iteration)
 * on the four configurations as the core count scales 16 -> 256.
 * Expected shape (paper): WiSync stays low and flat thanks to the
 * Tone channel; WiSyncNoT is 2-6x above it; Baseline+ is ~an order of
 * magnitude above WiSync; Baseline is 2-3 orders above.
 *
 * The grid is declared up front and fanned out over host threads by
 * harness::ParallelSweep (WISYNC_SWEEP_THREADS; 1 = serial); results
 * come back in grid order, so the table below is byte-identical at
 * any thread count.
 */

#include <array>
#include <iostream>
#include <vector>

#include "harness/parallel_sweep.hh"
#include "harness/report.hh"
#include "workloads/tight_loop.hh"

using namespace wisync;

int
main()
{
    using core::ConfigKind;

    std::vector<std::uint32_t> cores;
    switch (harness::sweepMode()) {
      case harness::SweepMode::Quick:
        cores = {16, 64};
        break;
      case harness::SweepMode::Default:
      case harness::SweepMode::Full:
        cores = {16, 32, 64, 128, 256};
        break;
    }

    workloads::TightLoopParams params;
    params.iterations =
        harness::sweepMode() == harness::SweepMode::Quick ? 5 : 20;

    const std::array<ConfigKind, 4> kinds = {
        ConfigKind::Baseline, ConfigKind::BaselinePlus,
        ConfigKind::WiSyncNoT, ConfigKind::WiSync};

    harness::ParallelSweep sweep;
    struct Row
    {
        std::uint32_t cores;
        std::array<std::size_t, 4> idx;
    };
    std::vector<Row> rows;
    for (const auto n : cores) {
        Row row{n, {}};
        for (std::size_t k = 0; k < kinds.size(); ++k) {
            row.idx[k] = sweep.add(
                core::MachineConfig::make(kinds[k], n),
                [params](core::Machine &m) {
                    return workloads::runTightLoopOn(m, params);
                });
        }
        rows.push_back(row);
    }
    const auto results = sweep.run();

    harness::TextTable fig(
        "Figure 7: TightLoop cycles/iteration vs core count");
    fig.header({"Cores", "Baseline", "Baseline+", "WiSyncNoT", "WiSync",
                "Base/WiSync"});
    for (const auto &row : rows) {
        auto per = [&](std::size_t k) {
            const auto &r = results[row.idx[k]];
            return static_cast<double>(r.cycles) /
                   static_cast<double>(r.operations);
        };
        fig.row({std::to_string(row.cores), harness::fmt(per(0), 0),
                 harness::fmt(per(1), 0), harness::fmt(per(2), 0),
                 harness::fmt(per(3), 0),
                 harness::fmt(per(0) / per(3), 1) + "x"});
    }
    fig.print(std::cout);
    return 0;
}
