/**
 * @file
 * Regenerates Figure 7: TightLoop execution time (cycles/iteration)
 * on the four configurations as the core count scales 16 -> 256.
 * Expected shape (paper): WiSync stays low and flat thanks to the
 * Tone channel; WiSyncNoT is 2-6x above it; Baseline+ is ~an order of
 * magnitude above WiSync; Baseline is 2-3 orders above.
 */

#include <iostream>
#include <vector>

#include "harness/report.hh"
#include "harness/sweep.hh"
#include "workloads/tight_loop.hh"

using namespace wisync;

int
main()
{
    using core::ConfigKind;
    harness::SweepHarness machines;

    std::vector<std::uint32_t> cores;
    switch (harness::sweepMode()) {
      case harness::SweepMode::Quick:
        cores = {16, 64};
        break;
      case harness::SweepMode::Default:
      case harness::SweepMode::Full:
        cores = {16, 32, 64, 128, 256};
        break;
    }

    workloads::TightLoopParams params;
    params.iterations =
        harness::sweepMode() == harness::SweepMode::Quick ? 5 : 20;

    harness::TextTable fig(
        "Figure 7: TightLoop cycles/iteration vs core count");
    fig.header({"Cores", "Baseline", "Baseline+", "WiSyncNoT", "WiSync",
                "Base/WiSync"});
    for (const auto n : cores) {
        auto run = [&](ConfigKind kind) {
            return workloads::runTightLoopOn(
                machines.acquire(core::MachineConfig::make(kind, n)),
                params);
        };
        const auto base = run(ConfigKind::Baseline);
        const auto plus = run(ConfigKind::BaselinePlus);
        const auto not_ = run(ConfigKind::WiSyncNoT);
        const auto full = run(ConfigKind::WiSync);
        auto per = [](const workloads::KernelResult &r) {
            return static_cast<double>(r.cycles) /
                   static_cast<double>(r.operations);
        };
        fig.row({std::to_string(n), harness::fmt(per(base), 0),
                 harness::fmt(per(plus), 0), harness::fmt(per(not_), 0),
                 harness::fmt(per(full), 0),
                 harness::fmt(per(base) / per(full), 1) + "x"});
    }
    fig.print(std::cout);
    return 0;
}
