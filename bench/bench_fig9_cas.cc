/**
 * @file
 * Regenerates Figure 9: CAS throughput (successful CASes per 1000
 * cycles) of the FIFO, LIFO and ADD lock-free kernels on Baseline vs
 * WiSync, sweeping the critical-section size (instructions between
 * CASes) at 64 and 128 cores. Expected shape (paper): near parity at
 * 8-16K+ instructions, with WiSync pulling ~an order of magnitude
 * ahead as the critical section shrinks and contention rises.
 *
 * The whole (cores x kernel x CS size x kind) grid runs through one
 * ParallelSweep; tables are printed from the merged results.
 */

#include <algorithm>
#include <array>
#include <iostream>
#include <string>
#include <vector>

#include "harness/parallel_sweep.hh"
#include "harness/report.hh"
#include "workloads/cas_kernels.hh"

using namespace wisync;

namespace {

using core::ConfigKind;

struct Row
{
    std::uint32_t cs;
    std::size_t baseIdx;
    std::size_t wisIdx;
};

struct Table
{
    std::string title;
    std::vector<Row> rows;
};

Table
declare(harness::ParallelSweep &sweep, workloads::CasKernel kernel,
        const char *name, std::uint32_t cores,
        const std::vector<std::uint32_t> &cs_sizes)
{
    Table table;
    table.title = std::string("Figure 9: ") + name +
                  " CAS throughput per 1000 cycles, " +
                  std::to_string(cores) + " cores";
    for (const auto cs : cs_sizes) {
        workloads::CasKernelParams params;
        params.criticalSectionInstr = cs;
        params.duration = 200'000 + static_cast<sim::Cycle>(cs) * 16;
        auto add = [&](ConfigKind kind) {
            return sweep.add(core::MachineConfig::make(kind, cores),
                             [kernel, params](core::Machine &m) {
                                 return workloads::runCasKernelOn(kernel, m,
                                                                  params);
                             });
        };
        table.rows.push_back(Row{cs, add(ConfigKind::Baseline),
                                 add(ConfigKind::WiSync)});
    }
    return table;
}

void
print(const Table &table,
      const std::vector<workloads::KernelResult> &results)
{
    harness::TextTable fig(table.title);
    fig.header({"CS instr", "Baseline", "WiSync", "WiSync/Base"});
    for (const auto &row : table.rows) {
        const auto &base = results[row.baseIdx];
        const auto &wis = results[row.wisIdx];
        fig.row({std::to_string(row.cs),
                 harness::fmt(base.opsPerKiloCycle(), 2),
                 harness::fmt(wis.opsPerKiloCycle(), 2),
                 harness::fmt(wis.opsPerKiloCycle() /
                                  std::max(0.001, base.opsPerKiloCycle()),
                              1) +
                     "x"});
    }
    fig.print(std::cout);
}

} // namespace

int
main()
{
    std::vector<std::uint32_t> cs_sizes, corecounts;
    switch (harness::sweepMode()) {
      case harness::SweepMode::Quick:
        cs_sizes = {4096, 64};
        corecounts = {64};
        break;
      case harness::SweepMode::Default:
        cs_sizes = {65536, 16384, 4096, 1024, 256, 64, 16, 4};
        corecounts = {64};
        break;
      case harness::SweepMode::Full:
        cs_sizes = {65536, 16384, 4096, 1024, 256, 64, 16, 4};
        corecounts = {64, 128};
        break;
    }

    harness::ParallelSweep sweep;
    std::vector<Table> tables;
    for (const auto cores : corecounts) {
        tables.push_back(declare(sweep, workloads::CasKernel::Fifo, "FIFO",
                                 cores, cs_sizes));
        tables.push_back(declare(sweep, workloads::CasKernel::Lifo, "LIFO",
                                 cores, cs_sizes));
        tables.push_back(declare(sweep, workloads::CasKernel::Add, "ADD",
                                 cores, cs_sizes));
    }
    const auto results = sweep.run();
    for (const auto &table : tables)
        print(table, results);
    return 0;
}
