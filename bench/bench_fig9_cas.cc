/**
 * @file
 * Regenerates Figure 9: CAS throughput (successful CASes per 1000
 * cycles) of the FIFO, LIFO and ADD lock-free kernels on Baseline vs
 * WiSync, sweeping the critical-section size (instructions between
 * CASes) at 64 and 128 cores. Expected shape (paper): near parity at
 * 8-16K+ instructions, with WiSync pulling ~an order of magnitude
 * ahead as the critical section shrinks and contention rises.
 */

#include <iostream>
#include <vector>

#include "harness/report.hh"
#include "harness/sweep.hh"
#include "workloads/cas_kernels.hh"

using namespace wisync;

namespace {

void
sweep(harness::SweepHarness &machines, workloads::CasKernel kernel,
      const char *name, std::uint32_t cores,
      const std::vector<std::uint32_t> &cs_sizes)
{
    using core::ConfigKind;
    harness::TextTable fig(std::string("Figure 9: ") + name +
                           " CAS throughput per 1000 cycles, " +
                           std::to_string(cores) + " cores");
    fig.header({"CS instr", "Baseline", "WiSync", "WiSync/Base"});
    for (const auto cs : cs_sizes) {
        workloads::CasKernelParams params;
        params.criticalSectionInstr = cs;
        params.duration = 200'000 + static_cast<sim::Cycle>(cs) * 16;
        auto run = [&](ConfigKind kind) {
            return workloads::runCasKernelOn(
                kernel,
                machines.acquire(core::MachineConfig::make(kind, cores)),
                params);
        };
        const auto base = run(ConfigKind::Baseline);
        const auto wis = run(ConfigKind::WiSync);
        fig.row({std::to_string(cs),
                 harness::fmt(base.opsPerKiloCycle(), 2),
                 harness::fmt(wis.opsPerKiloCycle(), 2),
                 harness::fmt(wis.opsPerKiloCycle() /
                                  std::max(0.001,
                                           base.opsPerKiloCycle()),
                              1) +
                     "x"});
    }
    fig.print(std::cout);
}

} // namespace

int
main()
{
    std::vector<std::uint32_t> cs_sizes, corecounts;
    switch (harness::sweepMode()) {
      case harness::SweepMode::Quick:
        cs_sizes = {4096, 64};
        corecounts = {64};
        break;
      case harness::SweepMode::Default:
        cs_sizes = {65536, 16384, 4096, 1024, 256, 64, 16, 4};
        corecounts = {64};
        break;
      case harness::SweepMode::Full:
        cs_sizes = {65536, 16384, 4096, 1024, 256, 64, 16, 4};
        corecounts = {64, 128};
        break;
    }

    harness::SweepHarness machines;
    for (const auto cores : corecounts) {
        sweep(machines, workloads::CasKernel::Fifo, "FIFO", cores,
              cs_sizes);
        sweep(machines, workloads::CasKernel::Lifo, "LIFO", cores,
              cs_sizes);
        sweep(machines, workloads::CasKernel::Add, "ADD", cores,
              cs_sizes);
    }
    return 0;
}
